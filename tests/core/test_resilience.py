"""Chaos suite: the fault-tolerance layer must never change verdicts.

Every test here drives the execution stack through an injected fault —
killed workers, dropped replies, broken pools, raising builders, expired
budgets — and asserts the two resilience contracts:

* **liveness** — grids and sweeps complete (degrading through the
  quarantine ladder if they must), deadline-expired queries return a
  first-class ``TIMEOUT``, and no child process outlives its session;
* **verdict byte-identity** — a recovered run replays from the same
  :class:`~repro.core.engine.SessionSnapshot`, so its verdicts equal the
  fault-free sequential reference exactly.

Faults are deterministic (:class:`~repro.core.resilience.FaultPlan`
triggers with per-process counters and an optional once-globally latch),
so every scenario in here is reproducible: a *latched* kill is the
recovery drill (one worker dies, once), an *unlatched* kill is the
quarantine drill (every fresh worker dies until the ladder degrades).
"""

import json
import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor

import pytest

from repro.core import (
    Deadline,
    Experiment,
    ExperimentResult,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ParallelVerificationSession,
    PortfolioSession,
    RetryPolicy,
    ScenarioSpec,
    SessionSpec,
    VerificationSession,
    Verdict,
    install_fault_plan,
    minimal_queue_size,
    shutdown_scenario_executors,
    sweep_queue_sizes,
)
from repro.core.parallel import discard_scenario_executor, scenario_executor
from repro.core.resilience import (
    KILL_EXIT_CODE,
    active_fault_plan,
    drain_queue,
    maybe_inject,
    reap_process,
)
from repro.netlib import running_example

pytestmark = pytest.mark.chaos


def _network(queue_size=2):
    return running_example(queue_size=queue_size).network


def _eager_reference(queue_size=2):
    session = VerificationSession(_network(queue_size))
    session.add_invariants()
    return session.verify()


@pytest.fixture(autouse=True)
def hermetic_faults():
    """Every chaos test starts clean and leaves no plan, pool or child."""
    install_fault_plan(None)
    yield
    install_fault_plan(None)
    shutdown_scenario_executors()
    # No leaked children: everything spawned during the test must be
    # reaped by its session's recovery/close paths (or the shutdown
    # above).  active_children() joins zombies as a side effect.
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


# ---------------------------------------------------------------------------
# Deadline primitives
# ---------------------------------------------------------------------------


def test_deadline_requires_at_least_one_bound():
    with pytest.raises(ValueError):
        Deadline()
    with pytest.raises(ValueError):
        Deadline(seconds=-1)
    with pytest.raises(ValueError):
        Deadline(conflicts=-1)


def test_deadline_conflict_budget_accounting():
    deadline = Deadline(conflicts=100)
    assert deadline.remaining_conflicts() == 100
    assert not deadline.expired()
    deadline.charge(60)
    assert deadline.remaining_conflicts() == 40
    deadline.charge(60)
    assert deadline.remaining_conflicts() == 0
    assert deadline.expired()
    # should_stop polls the wall clock only — the conflict side is
    # enforced through conflict_limit, not the hot-path callback.
    assert not deadline.should_stop()


def test_deadline_wall_clock_expiry():
    assert Deadline(seconds=0.0).expired()
    assert Deadline(seconds=0.0).should_stop()
    generous = Deadline(seconds=3600.0)
    assert not generous.expired()
    assert generous.remaining_seconds() <= 3600.0


def test_deadline_wire_round_trip_and_coerce():
    deadline = Deadline(seconds=50.0, conflicts=200)
    deadline.charge(50)
    seconds, conflicts = deadline.to_wire()
    assert conflicts == 150 and 0 < seconds <= 50.0
    rebuilt = Deadline.from_wire((seconds, conflicts))
    assert rebuilt.remaining_conflicts() == 150
    assert Deadline.from_wire(None) is None
    assert Deadline.coerce(None) is None
    assert Deadline.coerce(deadline) is deadline
    assert Deadline.coerce(5).seconds == 5.0
    assert Deadline.coerce((None, 10)).remaining_conflicts() == 10


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------


def test_retry_policy_deterministic_capped_backoff():
    policy = RetryPolicy(base_delay=0.05, max_delay=0.3, backoff=2.0)
    delays = [policy.delay(attempt) for attempt in range(6)]
    assert delays == [policy.delay(attempt) for attempt in range(6)]
    # Exponential up to the cap (jitter only ever adds, never removes).
    assert delays[0] >= 0.05
    assert all(d <= 0.3 * (1.0 + policy.jitter) for d in delays)
    assert delays[4] == delays[5] or delays[5] <= 0.3 * (1.0 + policy.jitter)
    # Different seeds jitter differently, same seed identically.
    assert RetryPolicy(seed=1).delay(2) != RetryPolicy(seed=2).delay(2)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)


# ---------------------------------------------------------------------------
# FaultPlan: parsing, counters, latching, environment plumbing
# ---------------------------------------------------------------------------


def test_fault_plan_parse_round_trip():
    plan = FaultPlan.parse("query-worker:kill@2, racer-slice:drop")
    assert plan.specs == (
        FaultSpec("query-worker", "kill", 2),
        FaultSpec("racer-slice", "drop", 1),
    )
    assert plan.describe() == "query-worker:kill@2,racer-slice:drop@1"
    with pytest.raises(ValueError):
        FaultPlan.parse("site-without-action")
    with pytest.raises(ValueError):
        FaultPlan.parse("site:explode")


def test_fault_plan_fires_on_nth_arrival():
    plan = FaultPlan.parse("s:raise@2")
    assert plan.fire("s") is None
    assert plan.fire("s") == "raise"
    assert plan.fire("s") is None  # counters move past the trigger
    assert plan.fire("other") is None
    assert plan.hits("s") == 3


def test_fault_plan_latch_fires_once_globally(tmp_path):
    first = FaultPlan.parse("s:raise@1", latch_dir=str(tmp_path))
    second = FaultPlan.parse("s:raise@1", latch_dir=str(tmp_path))
    assert first.fire("s") == "raise"
    # A second plan (standing in for another process) finds the marker.
    assert second.fire("s") is None


def test_install_fault_plan_environment_round_trip(tmp_path):
    install_fault_plan("builder:raise@3", latch_dir=str(tmp_path))
    assert os.environ["ADVOCAT_FAULTS"] == "builder:raise@3"
    assert os.environ["ADVOCAT_FAULT_LATCH"] == str(tmp_path)
    assert os.environ["ADVOCAT_FAULT_PID"] == str(os.getpid())
    plan = active_fault_plan()
    assert plan is not None and plan.owner_pid == os.getpid()
    install_fault_plan(None)
    assert "ADVOCAT_FAULTS" not in os.environ
    assert active_fault_plan() is None


def test_maybe_inject_actions():
    assert maybe_inject("anything") is None  # no plan: cheap no-op
    install_fault_plan("s:raise@1,t:break@1,u:drop@1,v:kill@1")
    with pytest.raises(InjectedFault):
        maybe_inject("s")
    with pytest.raises(BrokenExecutor):
        maybe_inject("t")
    assert maybe_inject("u") == "drop"
    # kill in the plan's owner process is downgraded to a raise — an
    # injected kill can never take down the test runner itself.
    with pytest.raises(InjectedFault):
        maybe_inject("v")


# ---------------------------------------------------------------------------
# Deadlines through the stack: TIMEOUT, never a hang
# ---------------------------------------------------------------------------


def test_engine_conflict_budget_times_out_and_session_survives():
    session = VerificationSession(_network())
    session.add_invariants()
    result = session.verify(deadline=Deadline(conflicts=1))
    assert result.verdict == Verdict.TIMEOUT
    assert result.timed_out and not result.deadlock_free
    assert result.stats["timed_out"] is True
    # The session (and everything it learned) survives the timeout.
    assert session.verify().verdict == _eager_reference().verdict


def test_pre_expired_deadline_skips_the_solver():
    session = VerificationSession(_network())
    result = session.verify(deadline=Deadline(seconds=0.0))
    assert result.verdict == Verdict.TIMEOUT
    assert result.stats["solver"] == {}  # no stale stats from prior queries


def test_parallel_session_deadline_yields_timeouts_then_recovers():
    spec = SessionSpec(_network(), parametric_queues=True)
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="thread", force_pool=True
    ) as pool:
        # An exhausted budget times out every shipped job...
        timed = pool.verify_all_cases(deadline=Deadline(conflicts=0))
        assert all(r.verdict == Verdict.TIMEOUT for r in timed)
        # ...a tiny one may still answer cases that solve within it; any
        # verdict that does land must match the sequential reference.
        reference = [r.verdict for r in _sequential_all_cases()]
        mixed = pool.verify_all_cases(deadline=Deadline(conflicts=1))
        for got, want in zip(mixed, reference):
            assert got.verdict in (want, Verdict.TIMEOUT)
        clean = pool.verify_all_cases()
        assert [r.verdict for r in clean] == reference


def test_portfolio_inline_deadline_timeout_wins_no_strategy():
    with PortfolioSession(network=_network(), force_race=True) as session:
        result = session.race(deadline=Deadline(conflicts=1))
        assert result.verdict == Verdict.TIMEOUT
        assert sum(session.strategy_wins.values()) == 0
        assert session.race().verdict == _eager_reference().verdict


def test_sizing_deadline_returns_partial_result():
    build = lambda size: _network(queue_size=size)  # noqa: E731
    sizing = minimal_queue_size(
        build, max_size=6, deadline=Deadline(conflicts=1)
    )
    assert sizing.timed_out and sizing.minimal_size is None
    assert any(r.timed_out for r in sizing.results.values())
    # A generous budget answers exactly like no budget at all.
    bounded = minimal_queue_size(
        build, max_size=6, deadline=Deadline(conflicts=10**7)
    )
    unbounded = minimal_queue_size(build, max_size=6)
    assert bounded.minimal_size == unbounded.minimal_size
    assert not bounded.timed_out


def test_sweep_deadline_marks_unanswered_sizes_timeout():
    build = lambda size: _network(queue_size=size)  # noqa: E731
    swept = sweep_queue_sizes(build, [1, 2, 3], deadline=Deadline(conflicts=1))
    assert swept.timed_out
    assert all(r.timed_out for r in swept.results.values())
    assert swept.probes == {}  # TIMEOUT probes never masquerade as verdicts


# ---------------------------------------------------------------------------
# Worker-crash recovery: the parallel query pool
# ---------------------------------------------------------------------------


def test_pool_worker_kill_recovers_with_identical_verdicts(tmp_path):
    reference = [r.verdict for r in _sequential_all_cases()]
    install_fault_plan(
        FaultPlan.parse("query-worker:kill@1"), latch_dir=str(tmp_path)
    )
    spec = SessionSpec(_network(), parametric_queues=True)
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="process", force_pool=True
    ) as pool:
        got = pool.verify_all_cases()
        assert [r.verdict for r in got] == reference
        assert pool.recoveries == 1
        assert not pool.degraded


def test_pool_worker_persistent_kill_quarantines_to_inline():
    reference = [r.verdict for r in _sequential_all_cases()]
    # No latch: every fresh worker dies on its first job, so the session
    # must burn its attempts and degrade to in-process execution.
    install_fault_plan(FaultPlan.parse("query-worker:kill@1"))
    spec = SessionSpec(_network(), parametric_queues=True)
    policy = RetryPolicy(max_attempts=2, base_delay=0.01)
    with ParallelVerificationSession(
        spec=spec,
        jobs=2,
        backend="process",
        force_pool=True,
        retry_policy=policy,
    ) as pool:
        got = pool.verify_all_cases()
        assert [r.verdict for r in got] == reference
        assert pool.degraded
        assert pool.recoveries == policy.max_attempts
        # Degradation is sticky: later dispatches stay inline (and keep
        # answering correctly) instead of rebuilding doomed pools.
        again = pool.verify_all_cases()
        assert [r.verdict for r in again] == reference
        assert pool.recoveries == policy.max_attempts


def test_parent_side_pool_break_is_retried(tmp_path):
    reference = [r.verdict for r in _sequential_all_cases()]
    install_fault_plan(
        FaultPlan.parse("parallel-pool:break@1"), latch_dir=str(tmp_path)
    )
    spec = SessionSpec(_network(), parametric_queues=True)
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="thread", force_pool=True
    ) as pool:
        got = pool.verify_all_cases()
        assert [r.verdict for r in got] == reference
        assert pool.recoveries == 1
        assert pool.stats()["recoveries"] == 1


def _sequential_all_cases():
    spec = SessionSpec(_network(), parametric_queues=True)
    return VerificationSession(spec=spec).verify_all_cases()


# ---------------------------------------------------------------------------
# Worker-crash recovery: the portfolio slice servers
# ---------------------------------------------------------------------------


def test_racer_kill_recovers_with_identical_verdict(tmp_path):
    reference = _eager_reference()
    install_fault_plan(
        FaultPlan.parse("racer-slice:kill@1"), latch_dir=str(tmp_path)
    )
    with PortfolioSession(
        network=_network(),
        force_race=True,
        backend="process",
        jobs=3,
        slice_conflicts=30,
    ) as session:
        result = session.race()
        assert result.verdict == reference.verdict
        assert session.recoveries == 1
        assert not session.degraded


def test_racer_dropped_reply_detected_as_hang(tmp_path):
    reference = _eager_reference()
    install_fault_plan(
        FaultPlan.parse("racer-slice:drop@1"), latch_dir=str(tmp_path)
    )
    with PortfolioSession(
        network=_network(),
        force_race=True,
        backend="process",
        jobs=3,
        slice_conflicts=30,
        reply_timeout=2.0,
    ) as session:
        result = session.race()
        assert result.verdict == reference.verdict
        assert session.recoveries == 1


def test_persistent_racer_kill_degrades_to_inline():
    reference = _eager_reference()
    install_fault_plan(FaultPlan.parse("racer-slice:kill@1"))
    with PortfolioSession(
        network=_network(),
        force_race=True,
        backend="process",
        jobs=3,
        slice_conflicts=30,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01),
    ) as session:
        result = session.race()
        assert result.verdict == reference.verdict
        assert session.degraded
        assert session.backend == "inline"


# ---------------------------------------------------------------------------
# Child-process hygiene primitives
# ---------------------------------------------------------------------------


def test_reap_process_escalation():
    quick = multiprocessing.Process(target=time.sleep, args=(0.0,))
    quick.start()
    assert reap_process(quick, timeout=5.0) == "joined"

    stubborn = multiprocessing.Process(target=time.sleep, args=(600.0,))
    stubborn.start()
    # Join times out immediately; SIGTERM must bring it down.
    assert reap_process(stubborn, timeout=0.05) == "terminated"
    assert not stubborn.is_alive()


def test_injected_kill_exit_code_is_recognisable():
    def _die():
        install_fault_plan(None)  # child-local: forget the parent's env
        os._exit(KILL_EXIT_CODE)

    child = multiprocessing.Process(target=_die)
    child.start()
    child.join(10.0)
    assert child.exitcode == KILL_EXIT_CODE


def test_drain_queue_counts_and_detaches():
    queue = multiprocessing.get_context("fork").Queue()
    for item in range(3):
        queue.put(item)
    time.sleep(0.2)  # let the feeder thread flush
    assert drain_queue(queue) == 3


# ---------------------------------------------------------------------------
# Experiment grids: quarantine ladder and structured failures
# ---------------------------------------------------------------------------


def _grid() -> Experiment:
    return Experiment(
        "chaos",
        [
            ScenarioSpec(builder="running_example", mode="sweep", sizes=(1, 2)),
            ScenarioSpec(builder="running_example", mode="search", max_size=4),
        ],
    )


def test_builder_fault_is_retried_inline(tmp_path):
    reference = _grid().run(jobs=1)
    install_fault_plan(
        FaultPlan.parse("builder:raise@1"), latch_dir=str(tmp_path)
    )
    result = _grid().run(jobs=1)
    assert result.verdict_bytes() == reference.verdict_bytes()
    assert result.retries == 1
    assert result.failures == 0 and result.degraded == 0


def test_scenario_worker_kill_grid_completes_identically(tmp_path):
    reference = _grid().run(jobs=1)
    install_fault_plan(
        FaultPlan.parse("scenario-worker:kill@1"), latch_dir=str(tmp_path)
    )
    result = _grid().run(jobs=2)
    assert result.verdict_bytes() == reference.verdict_bytes()
    assert result.retries >= 1
    assert result.failures == 0


def test_persistent_builder_fault_lands_structured_failures(tmp_path):
    # Unlatched triggers deep enough to outlast the whole ladder: the
    # grid must still complete, with failure placeholders in-slot.
    triggers = ",".join(f"builder:raise@{n}" for n in range(1, 40))
    install_fault_plan(FaultPlan.parse(triggers))
    result = _grid().run(jobs=1)
    install_fault_plan(None)
    assert len(result.scenarios) == 2
    assert result.failures == 2 and result.degraded == 2
    record = result.scenarios[0].failure
    assert record is not None and record["type"] == "InjectedFault"

    # Counters and failure records survive the JSON checkpoint format...
    reloaded = ExperimentResult.from_json(json.loads(json.dumps(result.to_json())))
    assert reloaded.failures == 2 and reloaded.retries == result.retries
    assert reloaded.scenarios[0].failure == record

    # ...and a resumed run retries failed scenarios instead of reusing them.
    checkpoint = tmp_path / "chaos.json"
    result.save(checkpoint)
    rerun = _grid().run(jobs=1, resume=checkpoint)
    assert rerun.reused == 0 and rerun.computed == 2
    assert rerun.failures == 0
    assert rerun.verdict_bytes() == _grid().run(jobs=1).verdict_bytes()


def test_experiment_deadline_reaches_every_scenario():
    result = _grid().run(jobs=1, deadline=Deadline(conflicts=1))
    assert len(result.scenarios) == 2
    assert all(s.probes == {} for s in result.scenarios)
    assert all(s.minimal_size is None for s in result.scenarios)
    assert result.failures == 0  # TIMEOUT is an answer, not a failure


# ---------------------------------------------------------------------------
# Satellite: scenario-executor cache eviction after a pool break
# ---------------------------------------------------------------------------


def test_discard_scenario_executor_evicts_cached_pool():
    first = scenario_executor(2, "thread")
    assert scenario_executor(2, "thread") is first  # cached
    discard_scenario_executor(2, "thread")
    second = scenario_executor(2, "thread")
    assert second is not first
    # The evicted executor is shut down: it must refuse new work.
    with pytest.raises(RuntimeError):
        first.submit(int)
    discard_scenario_executor(2, "thread")
    discard_scenario_executor(2, "thread")  # idempotent on a cold cache
