"""E1/E2: the paper's running example, end to end.

Section 1 derives (automatically) the cross-layer invariant

    #q0.req + #q1.ack = S.s1 - T.t1     (equivalently  S.s1 + T.t0 - 1)

and Section 3 reports exactly two deadlock candidates without invariants:
(s1, t0) with both queues empty, and (s0, t1) with q0 full of reqs and q1
full of acks — both unreachable, both ruled out by the invariant.
"""

from fractions import Fraction

from repro.core import (
    Verdict,
    VarPool,
    derive_colors,
    generate_invariants,
    verify,
)
from repro.core.result import Invariant
from repro.linalg import SparseVector, row_space_contains
from repro.netlib import running_example


def invariant_rows(invariants):
    """Invariants as sparse rows over variable uid columns (plus const=0)."""
    rows = []
    for inv in invariants:
        entries = {var.uid: coeff for var, coeff in inv.coeffs}
        if inv.constant:
            entries[0] = inv.constant
        rows.append(SparseVector(entries))
    return rows


def test_paper_invariant_is_derived():
    example = running_example()
    net = example.network
    pool = VarPool()
    colors = derive_colors(net)
    invariants = generate_invariants(net, colors, pool)
    assert invariants, "expected at least one invariant"

    q0_req = pool.occupancy(example.q_req, "req")
    q1_ack = pool.occupancy(example.q_ack, "ack")
    s_s1 = pool.state(example.sender, "s1")
    t_t1 = pool.state(example.receiver, "t1")
    # #q0.req + #q1.ack - S.s1 + T.t1 = 0
    target = SparseVector(
        {q0_req.uid: 1, q1_ack.uid: 1, s_s1.uid: -1, t_t1.uid: 1}
    )
    assert row_space_contains(invariant_rows(invariants), target), (
        "the paper's running-example invariant must be in the span of the "
        "generated invariants"
    )


def test_state_sum_invariants_present():
    example = running_example()
    net = example.network
    pool = VarPool()
    invariants = generate_invariants(net, derive_colors(net), pool)
    rows = invariant_rows(invariants)
    for automaton in (example.sender, example.receiver):
        entries = {pool.state(automaton, s).uid: 1 for s in automaton.states}
        entries[0] = -1  # constant column: Σ A.s - 1 = 0
        assert row_space_contains(rows, SparseVector(entries))


def test_invariants_hold_in_initial_state():
    example = running_example()
    net = example.network
    pool = VarPool()
    invariants = generate_invariants(net, derive_colors(net), pool)
    assignment = {}
    for automaton in net.automata():
        for state in automaton.states:
            assignment[pool.state(automaton, state)] = int(state == automaton.initial)
    # occupancies default to 0 in Invariant.evaluate
    for invariant in invariants:
        assert invariant.evaluate(assignment), invariant.pretty()


def test_running_example_deadlock_free_with_invariants():
    example = running_example()
    result = verify(example.network, use_invariants=True)
    assert result.verdict is Verdict.DEADLOCK_FREE
    assert result.stats["invariant_count"] >= 1


def test_without_invariants_candidates_appear():
    """Section 3: unfolding block/idle alone yields (unreachable) candidates."""
    example = running_example()
    result = verify(example.network, use_invariants=False)
    assert result.verdict is Verdict.DEADLOCK_CANDIDATE
    witness = result.witness
    assert witness is not None
    states = witness.automaton_states
    contents = witness.queue_contents
    total = witness.total_packets()
    # The two candidates the paper reports: empty queues in (s1, t0), or
    # full queues (q0: reqs, q1: acks) in (s0, t1).
    if total == 0:
        assert states == {"S": "s1", "T": "t0"}
    else:
        assert states == {"S": "s0", "T": "t1"}
        assert contents["q0"] == {"req": 2}
        assert contents["q1"] == {"ack": 2}


def test_candidates_match_paper_exactly():
    """Enumerate SMT models: exactly the paper's two candidate *shapes*."""
    from repro.core import encode_deadlock
    from repro.smt import Result, Solver, eq, neg, conj

    example = running_example()
    net = example.network
    colors = derive_colors(net)
    pool = VarPool()
    encoding = encode_deadlock(net, colors, pool)
    solver = Solver()
    for term in encoding.definitions + encoding.domain:
        solver.add(term)
    solver.add(encoding.assertion)

    s1 = pool.state(example.sender, "s1")
    t1 = pool.state(example.receiver, "t1")
    q0 = pool.occupancy(example.q_req, "req")
    q1 = pool.occupancy(example.q_ack, "ack")

    seen = set()
    for _ in range(16):
        if solver.check() != Result.SAT:
            break
        model = solver.model()
        shape = (model[s1], model[t1], model[q0], model[q1])
        seen.add(shape)
        # Block this exact (state, occupancy) shape and look for another.
        solver.add(
            neg(
                conj(
                    eq(s1, model[s1]),
                    eq(t1, model[t1]),
                    eq(q0, model[q0]),
                    eq(q1, model[q1]),
                )
            )
        )
    else:
        raise AssertionError("candidate enumeration did not converge")

    assert (1, 0, 0, 0) in seen, "paper candidate (s1,t0) with empty queues"
    assert (0, 1, 2, 2) in seen, "paper candidate (s0,t1) with full queues"


def test_invariant_pretty_roundtrip():
    example = running_example()
    net = example.network
    pool = VarPool()
    invariants = generate_invariants(net, derive_colors(net), pool)
    for inv in invariants:
        text = inv.pretty()
        assert "=" in text
        assert isinstance(hash(inv), int)


def test_invariant_term_feeds_solver():
    from repro.smt import Result, Solver

    inv = Invariant({}, Fraction(0))
    solver = Solver()
    solver.add(inv.term())
    assert solver.check() == Result.SAT
