"""Verification service: tiered caching, coalescing, lifecycle hygiene.

End-to-end coverage for the PR-9 service layer
(:mod:`repro.core.service`):

* the tier walk — a first query builds (``cache: "build"``), an
  identical repeat is archived (``"cold"``), a *distinct* query on the
  same encoding rehydrates a pool worker (``"warm"``) and promotes the
  encoding into the hot tier, after which further distinct queries
  answer in-server (``"hot"``);
* single-flight coalescing, bounded-queue backpressure, and the
  TIMEOUT-is-never-archived rule;
* the ``close()`` contract regression suite — idempotent on every
  session flavour, and pool workers actually released (the chaos
  suite's no-leaked-children fixture is re-used verbatim);
* hot-tier LRU eviction under ``hot_capacity < distinct specs`` and
  cold-tier persistence across a service restart on the same cache dir;
* the TCP protocol through both the asyncio and the blocking client.

Async scenarios run through ``asyncio.run`` inside sync tests (the
container has no pytest-asyncio); the process backend is exercised where
children/eviction are the point, the thread backend everywhere else.
"""

import asyncio
import multiprocessing
import time

import pytest

from repro.core import (
    AsyncServiceClient,
    ParallelVerificationSession,
    ServiceClient,
    ServiceSession,
    SessionSpec,
    VerificationService,
    VerificationSession,
    install_fault_plan,
    shutdown_scenario_executors,
)
from repro.netlib import running_example

pytestmark = pytest.mark.chaos

RUNNING = {"builder": "running_example", "kwargs": {"queue_size": 2}}
PRODCON = {"builder": "producer_consumer", "kwargs": {"queue_size": 2}}
RING = {"builder": "token_ring", "kwargs": {"n_stations": 3, "queue_size": 1}}


@pytest.fixture(autouse=True)
def hermetic_faults():
    """Every service test starts clean and leaves no plan, pool or child."""
    install_fault_plan(None)
    yield
    install_fault_plan(None)
    shutdown_scenario_executors()
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []


def run_service(scenario, **service_kwargs):
    """Spin a service up inside ``asyncio.run``, guarantee aclose()."""
    service_kwargs.setdefault("backend", "thread")
    service_kwargs.setdefault("jobs", 2)

    async def _main():
        service = VerificationService(**service_kwargs)
        try:
            return await scenario(service)
        finally:
            await service.aclose()

    return asyncio.run(_main())


# ---------------------------------------------------------------------------
# The tier walk
# ---------------------------------------------------------------------------


def test_tier_walk_build_cold_warm_hot(tmp_path):
    async def scenario(service):
        first = await service.handle_request(
            {"id": 1, "op": "verify", "spec": RUNNING}
        )
        assert first["ok"] and first["cache"] == "build"
        assert first["verdict"] == "deadlock-free"
        assert first["unsat_core"], "eager solve must report a core"

        repeat = await service.handle_request(
            {"id": 2, "op": "verify", "spec": RUNNING}
        )
        assert repeat["cache"] == "cold"
        assert repeat["verdict"] == first["verdict"]
        assert repeat["unsat_core"] == first["unsat_core"]

        cases = await service.handle_request(
            {"id": 3, "op": "cases", "spec": RUNNING}
        )
        assert cases["ok"] and cases["cases"]
        assert cases["encoding_hash"]

        channel = await service.handle_request(
            {
                "id": 4,
                "op": "verify_channel",
                "spec": RUNNING,
                "params": {"case": 0},
            }
        )
        assert channel["ok"] and channel["cache"] == "warm"
        assert channel["case"] == cases["cases"][0]["label"]

        # The warm solve promoted the encoding: the next distinct query
        # answers from the live in-server session.
        hot = await service.handle_request(
            {
                "id": 5,
                "op": "verify_channel",
                "spec": RUNNING,
                "params": {"case": 1},
            }
        )
        assert hot["ok"] and hot["cache"] == "hot"

        stats = service.stats()
        assert stats["queries"] == 4  # "cases" is not a query
        assert stats["hits"] == {"build": 1, "cold": 1, "warm": 1, "hot": 1}
        assert stats["hot_live"] == 1 and stats["pending"] == 0

    run_service(scenario, cache_dir=str(tmp_path))


def test_witness_and_size_queries(tmp_path):
    async def scenario(service):
        witness = await service.handle_request(
            {"id": 1, "op": "witness", "spec": RING}
        )
        assert witness["ok"] and witness["verdict"] == "deadlock-candidate"
        assert witness["witness"]["ints"], "sat verdict must carry a witness"
        assert witness["witness"]["blocked"]

        size = await service.handle_request(
            {"id": 2, "op": "size", "spec": PRODCON, "params": {"max_size": 8}}
        )
        assert size["ok"] and size["cache"] == "build"
        assert size["minimal_size"] >= 1 and size["probes"]

        again = await service.handle_request(
            {"id": 3, "op": "size", "spec": PRODCON, "params": {"max_size": 8}}
        )
        assert again["cache"] == "cold"
        assert again["minimal_size"] == size["minimal_size"]

    run_service(scenario, cache_dir=str(tmp_path))


def test_unknown_op_and_bad_spec_are_request_level_errors(tmp_path):
    async def scenario(service):
        bad_op = await service.handle_request({"id": 1, "op": "frobnicate"})
        assert not bad_op["ok"] and "unknown op" in bad_op["error"]
        no_spec = await service.handle_request({"id": 2, "op": "verify"})
        assert not no_spec["ok"]
        # The server survives both: a good request still answers.
        ping = await service.handle_request({"id": 3, "op": "ping"})
        assert ping["ok"] and ping["pong"]
        assert service.stats()["errors"] == 2

    run_service(scenario, cache_dir=str(tmp_path))


def test_spec_less_cases_lists_builder_catalog(tmp_path):
    """A ``cases`` request without a spec is discovery: it answers with
    every registered builder, its family and keyword parameters — the
    shape of a valid spec — and ``stats`` carries the same families."""

    async def scenario(service):
        discovery = await service.handle_request({"id": 1, "op": "cases"})
        assert discovery["ok"]
        builders = discovery["builders"]
        assert builders["msi_mesh"]["family"] == "msi"
        assert builders["abstract_mi_ring"]["family"] == "abstract_mi"
        assert "queue_size" in builders["msi_torus"]["params"]

        stats = service.stats()
        assert stats["builders"]["mi_torus"] == "mi"
        assert stats["errors"] == 0  # discovery is not an error path

    run_service(scenario, cache_dir=str(tmp_path))


# ---------------------------------------------------------------------------
# Coalescing, backpressure, deadlines
# ---------------------------------------------------------------------------


def test_concurrent_identical_queries_coalesce(tmp_path):
    async def scenario(service):
        responses = await asyncio.gather(
            *(
                service.handle_request({"id": i, "op": "verify", "spec": RING})
                for i in range(4)
            )
        )
        assert all(r["ok"] for r in responses)
        assert len({r["verdict"] for r in responses}) == 1
        stats = service.stats()
        assert stats["coalesced"] == 3
        assert stats["queries"] == 4
        # One solve answered everyone: exactly one non-coalesced hit.
        assert sum(stats["hits"].values()) == 1

    run_service(scenario, cache_dir=str(tmp_path))


def test_backpressure_rejects_when_overloaded(tmp_path):
    async def scenario(service):
        response = await service.handle_request(
            {"id": 1, "op": "verify", "spec": RUNNING}
        )
        assert not response["ok"] and response["error"] == "overloaded"
        assert service.stats()["rejected"] == 1

    run_service(scenario, cache_dir=str(tmp_path), max_pending=0)


def test_timeout_verdict_is_never_archived(tmp_path):
    async def scenario(service):
        timed = await service.handle_request(
            {"id": 1, "op": "verify", "spec": PRODCON, "deadline_s": 0.0}
        )
        assert timed["ok"] and timed["verdict"] == "timeout"

        # The budget expiry was the *request's* property, not the
        # encoding's: the repeat must re-solve (warm tier — the build
        # was archived even though the verdict was not) and succeed.
        fresh = await service.handle_request(
            {"id": 2, "op": "verify", "spec": PRODCON}
        )
        assert fresh["ok"] and fresh["cache"] == "warm"
        assert fresh["verdict"] == "deadlock-free"

        # Cached verdicts are served regardless of any deadline.
        cached = await service.handle_request(
            {"id": 3, "op": "verify", "spec": PRODCON, "deadline_s": 0.0}
        )
        assert cached["ok"] and cached["cache"] == "cold"
        assert cached["verdict"] == "deadlock-free"

    run_service(scenario, cache_dir=str(tmp_path))


# ---------------------------------------------------------------------------
# close() contract regressions
# ---------------------------------------------------------------------------


def test_verification_session_close_is_idempotent():
    session = VerificationSession(running_example(queue_size=2).network)
    session.add_invariants()
    before = session.verify().verdict
    session.close()
    session.close()  # idempotent
    # Local sessions hold no external resources: still usable.
    assert session.verify().verdict == before


def test_parallel_session_close_releases_workers_and_is_idempotent():
    spec = SessionSpec(
        running_example(queue_size=2).network, parametric_queues=True
    )
    spec.generate_invariants()
    session = ParallelVerificationSession(
        spec=spec, jobs=2, backend="process", force_pool=True
    )
    results = session.verify_all_cases()
    assert results and multiprocessing.active_children()

    session.close()
    deadline = time.monotonic() + 10.0
    while multiprocessing.active_children() and time.monotonic() < deadline:
        time.sleep(0.05)
    assert multiprocessing.active_children() == []
    session.close()  # second close: no-op, no error


def test_service_session_close_is_idempotent():
    spec = SessionSpec(
        running_example(queue_size=2).network, parametric_queues=True
    )
    spec.generate_invariants()
    snapshot = spec.snapshot()
    entry = ServiceSession(snapshot.content_hash(), snapshot)
    answer = entry.run(None, None, False, None)
    assert answer["verdict"] == "deadlock-free"

    entry.close()
    entry.close()  # idempotent
    assert entry.closed and entry.worker is None
    with pytest.raises(RuntimeError):
        entry.run(None, None, False, None)


# ---------------------------------------------------------------------------
# Eviction and persistence (process backend)
# ---------------------------------------------------------------------------


def test_lru_eviction_under_load_and_restart_persistence(tmp_path):
    cache_dir = str(tmp_path)

    async def churn(service):
        for spec in (RUNNING, PRODCON):
            built = await service.handle_request({"op": "verify", "spec": spec})
            assert built["ok"]
            # A distinct query promotes the encoding into the hot tier;
            # with capacity 1 the second spec evicts the first.
            promoted = await service.handle_request(
                {"op": "verify_channel", "spec": spec, "params": {"case": 0}}
            )
            assert promoted["ok"] and promoted["cache"] == "warm"
        stats = service.stats()
        assert stats["evictions"] >= 1
        assert stats["hot_live"] == 1

    run_service(
        churn, cache_dir=cache_dir, hot_capacity=1, backend="process"
    )
    assert multiprocessing.active_children() == []

    # A fresh service over the same cache dir serves archived verdicts
    # without touching a solver (content-addressed cold tier on disk).
    async def rehydrated(service):
        response = await service.handle_request(
            {"op": "verify", "spec": RUNNING}
        )
        assert response["ok"] and response["cache"] == "cold"
        assert response["verdict"] == "deadlock-free"

    run_service(rehydrated, cache_dir=cache_dir)


# ---------------------------------------------------------------------------
# The wire protocol
# ---------------------------------------------------------------------------


def test_tcp_round_trip_with_both_clients(tmp_path):
    async def scenario(service):
        await service.serve()
        port = service.port

        client = await AsyncServiceClient.connect("127.0.0.1", port)
        pong = await client.request("ping")
        assert pong["ok"] and pong["pong"] and pong["id"] == 1
        first = await client.request("verify", spec=RUNNING)
        assert first["ok"] and first["cache"] == "build"

        def blocking_calls():
            with ServiceClient("127.0.0.1", port) as sync_client:
                ping = sync_client.request("ping")
                repeat = sync_client.request("verify", spec=RUNNING)
                stats = sync_client.request("stats")
                return ping, repeat, stats

        ping, repeat, stats = await asyncio.to_thread(blocking_calls)
        assert ping["pong"]
        assert repeat["cache"] == "cold"
        assert repeat["verdict"] == first["verdict"]
        assert stats["stats"]["queries"] == 2

        stopping = await client.request("shutdown")
        assert stopping["ok"] and stopping["stopping"]
        assert service._shutdown.is_set()
        await client.aclose()

    run_service(scenario, cache_dir=str(tmp_path))
