"""Warm snapshots and the single-CPU pool fallback.

A warm snapshot ships the parent's learned clauses (demoted below glue
protection) and saved phases; both are pure search heuristics, so a warm
worker must answer every query exactly like a cold one — and like the
sequential session — across job counts.  The fallback satellite pins the
in-process path: on one CPU (or one worker) the parallel session answers
through an inline :class:`WorkerSession` with no executor, including the
invariant-staleness healing the pool path has.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ParallelVerificationSession,
    SessionSpec,
    VerificationSession,
    sweep_queue_sizes,
)
from repro.core.parallel import WorkerSession, default_jobs
from repro.netlib import running_example


def _network(queue_size=2):
    return running_example(queue_size=queue_size).network


# ---------------------------------------------------------------------------
# Warm == cold, across the worker protocol
# ---------------------------------------------------------------------------


def test_warm_worker_answers_every_case_like_a_cold_one():
    spec = SessionSpec(_network(), parametric_queues=True)
    parent = VerificationSession(spec=spec)
    parent.verify()  # accumulate learned state worth shipping
    cold = WorkerSession(spec.snapshot())
    warm = WorkerSession(parent.snapshot(include_learned=True))
    assert len(parent.snapshot(include_learned=True).solver.learned) > 0
    for target in (None, *range(len(spec.encoding.cases))):
        for size in (1, 2, 3):
            sizes = tuple(
                sorted({q: size for q in spec.initial_sizes}.items())
            )
            cold_payload = cold.check(target, sizes, want_witness=False)
            warm_payload = warm.check(target, sizes, want_witness=False)
            assert cold_payload[0] == warm_payload[0], (target, size)


@given(
    sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=3),
    jobs=st.sampled_from([1, 2, 4]),
)
@settings(max_examples=15, deadline=None)
def test_warm_pool_equals_sequential_across_job_counts(sizes, jobs):
    spec = SessionSpec(_network(), parametric_queues=True)
    sequential = VerificationSession(spec=spec)
    with ParallelVerificationSession(
        spec=spec, jobs=jobs, backend="thread", warm_start=True
    ) as pool:
        for size in sizes:
            sequential.resize_queues(size)
            pool.resize_queues(size)
            seq_all = sequential.verify_all_cases()
            par_all = pool.verify_all_cases()
            assert [r.verdict for r in par_all] == [
                r.verdict for r in seq_all
            ]


def test_warm_start_off_still_matches_on():
    spec = SessionSpec(_network(), parametric_queues=True)
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="thread", warm_start=True
    ) as warm_pool:
        warm = warm_pool.verify_all_cases()
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="thread", warm_start=False
    ) as cold_pool:
        cold = cold_pool.verify_all_cases()
    assert [r.verdict for r in warm] == [r.verdict for r in cold]


def test_forced_pool_still_matches_inline_fallback():
    spec = SessionSpec(_network(), parametric_queues=True)
    with ParallelVerificationSession(
        spec=spec, jobs=2, backend="thread", force_pool=True
    ) as pool:
        forced = pool.verify_all_cases()
        assert pool._executor is not None  # a real executor ran
    with ParallelVerificationSession(
        spec=spec, jobs=1, backend="thread"
    ) as inline:
        fallback = inline.verify_all_cases()
        assert inline._executor is None
    assert [r.verdict for r in forced] == [r.verdict for r in fallback]


# ---------------------------------------------------------------------------
# Single-CPU / single-worker fallback (satellite)
# ---------------------------------------------------------------------------


def test_default_jobs_tracks_cpu_count():
    assert default_jobs() == max(1, os.cpu_count() or 1)


def test_jobs_default_is_cpu_count():
    pool = ParallelVerificationSession(_network(), backend="thread")
    assert pool.jobs == default_jobs()
    pool.close()


def test_single_worker_runs_inline_without_an_executor():
    with ParallelVerificationSession(
        _network(), jobs=1, backend="thread"
    ) as pool:
        result = pool.verify()
        assert not result.deadlock_free
        stats = pool.stats()
        assert stats["pool_running"] is False
        assert stats["inline_worker"] is True


def test_inline_fallback_heals_invariant_staleness():
    with ParallelVerificationSession(
        _network(), jobs=1, backend="thread"
    ) as pool:
        assert not pool.verify().deadlock_free  # block/idle only
        pool.add_invariants()
        result = pool.verify()  # inline worker must rehydrate strengthened
        assert result.deadlock_free
        assert result.stats["invariant_count"] == len(pool.invariants) > 0


# ---------------------------------------------------------------------------
# Phase-seeded sweeps stay observationally identical
# ---------------------------------------------------------------------------


def test_sweep_verdicts_identical_with_and_without_reduction():
    def build(size):
        return running_example(queue_size=size).network

    swept = sweep_queue_sizes(build, range(1, 5), jobs=1)
    plain = sweep_queue_sizes(
        build, range(1, 5), jobs=1, clause_reduction=False
    )
    assert swept.probes == plain.probes
    assert swept.minimal_size == plain.minimal_size


def test_reduction_knobs_survive_the_snapshot_round_trip():
    opts = {"reduce_base": 123, "reduce_growth": 1.11, "glue_cap": 45}
    spec = SessionSpec(_network(), parametric_queues=True)
    session = VerificationSession(spec=spec, reduction_opts=opts)
    worker = WorkerSession(session.snapshot())
    core = worker.solver._sat
    assert core._reduce_limit == 123
    assert core._reduce_growth == 1.11
    assert core.glue_cap == 45
    cold_worker = WorkerSession(spec.snapshot(reduction_opts=opts))
    assert cold_worker.solver._sat._reduce_limit == 123


def test_seed_phases_from_witness_is_a_noop_before_first_sat():
    session = VerificationSession(_network())
    assert session.seed_phases_from_witness() == 0
    assert not session.verify().deadlock_free
    assert session.seed_phases_from_witness() > 0


# ---------------------------------------------------------------------------
# Long-session boundedness (benchmark-scale, deselected from tier-1)
# ---------------------------------------------------------------------------


@pytest.mark.slow
def test_long_monotone_sweep_stays_bounded_with_identical_verdicts():
    """Miniature of bench_warmstart's bounded-session acceptance gate."""
    from repro.protocols import abstract_mi_mesh

    spec = SessionSpec(
        abstract_mi_mesh(2, 2, queue_size=2).network, parametric_queues=True
    )
    spec.generate_invariants()

    def run(reduction):
        session = VerificationSession(
            spec=spec,
            clause_reduction=reduction,
            reduction_opts=(
                {"reduce_base": 200, "reduce_growth": 1.25, "glue_cap": 150}
                if reduction
                else None
            ),
        )
        verdicts = []
        for size in range(1, 121):
            session.resize_queues(size)
            session.seed_phases_from_witness()
            verdicts.append(session.verify().verdict)
        if reduction:
            session.compact()
        return verdicts, session.solver.learned_count()

    bounded_verdicts, bounded_live = run(True)
    unbounded_verdicts, unbounded_live = run(False)
    assert bounded_verdicts == unbounded_verdicts
    # The bench gate is < 0.5 on 200 sizes; leave slack for the shorter
    # sweep and hash-seed trajectory noise.
    assert bounded_live < 0.7 * unbounded_live
