"""Structural and end-to-end tests for the generic fabric builder on
wraparound topologies (torus / ring) and the dateline escape-VC scheme."""

from repro import Verdict, verify
from repro.fabrics import (
    FabricConfig,
    RingTopology,
    TorusTopology,
    build_fabric,
    traffic_ring,
    traffic_torus,
)
from repro.xmas import NetworkBuilder


def open_fabric(config):
    builder = NetworkBuilder("fabric-test")
    fabric = build_fabric(builder, config)
    return fabric


def test_torus_structure_all_nodes_degree_four():
    fabric = open_fabric(FabricConfig(TorusTopology(3, 3), queue_size=1))
    # A torus has no edge nodes: directed links = 4 * n = 36 link queues.
    assert len(fabric.link_queues) == 36
    assert len(fabric.ejection_queues) == 9
    assert set(fabric.inject_ports) == set(TorusTopology(3, 3).nodes())


def test_torus_escape_vcs_double_link_queues():
    plain = open_fabric(FabricConfig(TorusTopology(2, 2), queue_size=1))
    escaped = open_fabric(
        FabricConfig(TorusTopology(2, 2), queue_size=1, escape_vcs=True)
    )
    assert len(escaped.link_queues) == 2 * len(plain.link_queues)


def test_ring_structure_string_ports():
    fabric = open_fabric(FabricConfig(RingTopology(4), queue_size=1))
    # 2 directed links per node on a bidirectional ring.
    assert len(fabric.link_queues) == 8
    names = {q.name for q in fabric.link_queues}
    assert any("CW" in name for name in names)


def test_ring_without_escape_vcs_has_wrap_deadlock():
    """A 4-ring's wrap link closes the channel-dependence cycle: the
    encoder must find a deadlock witness at any queue size."""
    result = verify(traffic_ring(4, queue_size=3, escape_vcs=False))
    assert result.verdict is Verdict.DEADLOCK_CANDIDATE
    witness = result.witness
    assert witness is not None
    # The witness blocks a link queue (a wrap-cycle configuration), not
    # merely an ejection queue.
    assert witness.pretty()


def test_ring_with_escape_vcs_is_deadlock_free():
    result = verify(traffic_ring(4, queue_size=3, escape_vcs=True))
    assert result.verdict is Verdict.DEADLOCK_FREE


def test_small_torus_traffic_verifies_with_escape_vcs():
    result = verify(traffic_torus(2, 2, queue_size=2, escape_vcs=True))
    assert result.verdict is Verdict.DEADLOCK_FREE
