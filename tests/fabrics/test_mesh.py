"""Structural tests for the mesh fabric generator."""

import pytest

from repro.core import derive_colors
from repro.fabrics import MeshConfig, build_mesh, route_path, xy_routing
from repro.protocols import Message
from repro.protocols.abstract_mi import request_response_vc
from repro.xmas import NetworkBuilder


def closed_mesh(config):
    """Build a mesh and close every node with a source and sink."""
    builder = NetworkBuilder("mesh-test")
    fabric = build_mesh(builder, config)
    topology = config.topology
    all_nodes = list(topology.nodes())
    for node in all_nodes:
        others = [n for n in all_nodes if n != node]
        colors = {Message("pkt", src=node, dst=other) for other in others}
        src = builder.source(f"src_{node[0]}_{node[1]}", colors=colors)
        snk = builder.sink(f"snk_{node[0]}_{node[1]}")
        builder.connect(src.o, fabric.inject_ports[node])
        builder.connect(fabric.deliver_ports[node], snk.i)
    return builder.build(), fabric


def test_2x2_structure():
    net, fabric = closed_mesh(MeshConfig(2, 2, queue_size=2))
    stats = net.stats()
    # per node: 2 link queues + 1 injection + 1 ejection = 4 queues
    assert stats["queues"] == 16
    assert len(fabric.link_queues) == 8
    assert len(fabric.ejection_queues) == 4


def test_3x3_queue_count():
    net, fabric = closed_mesh(MeshConfig(3, 3, queue_size=1))
    # link queues = directed links: 2*(3*2*2) = 24; +9 inj +9 ej
    assert len(fabric.link_queues) == 24
    assert net.stats()["queues"] == 42


def test_ejection_queues_rotate():
    _, fabric = closed_mesh(MeshConfig(2, 2, queue_size=2))
    for queue in fabric.ejection_queues.values():
        assert queue.rotating
    for queue in fabric.link_queues:
        assert not queue.rotating


def test_colors_follow_xy_paths():
    net, fabric = closed_mesh(MeshConfig(3, 3, queue_size=1))
    colors = derive_colors(net)
    # A packet (0,0)->(2,2) must appear exactly on the queues along its
    # XY path and nowhere else.
    packet = Message("pkt", src=(0, 0), dst=(2, 2))
    expected_path = route_path(xy_routing, (0, 0), packet)
    for queue in fabric.link_queues:
        qcolors = colors.of(net.channel_of(queue.i))
        # link queue names: q_{x}_{y}_{dir-of-entry}
        parts = queue.name.split("_")
        node = (int(parts[1]), int(parts[2]))
        if packet in qcolors:
            assert node in expected_path
    # it must reach the destination ejection queue
    ej = fabric.ejection_queues[(2, 2)]
    assert packet in colors.of(net.channel_of(ej.i))
    # and never the opposite corner's
    ej_wrong = fabric.ejection_queues[(0, 0)]
    assert packet not in colors.of(net.channel_of(ej_wrong.i))


def test_self_send_ejects_locally():
    builder = NetworkBuilder("selfsend")
    config = MeshConfig(2, 1, queue_size=1)
    fabric = build_mesh(builder, config)
    loop = Message("pkt", src=(0, 0), dst=(0, 0))
    src = builder.source("src00", colors={loop})
    snk = builder.sink("snk00")
    builder.connect(src.o, fabric.inject_ports[(0, 0)])
    builder.connect(fabric.deliver_ports[(0, 0)], snk.i)
    other_src = builder.source(
        "src10", colors={Message("pkt", src=(1, 0), dst=(0, 0))}
    )
    other_snk = builder.sink("snk10")
    builder.connect(other_src.o, fabric.inject_ports[(1, 0)])
    builder.connect(fabric.deliver_ports[(1, 0)], other_snk.i)
    net = builder.build()
    colors = derive_colors(net)
    ej = fabric.ejection_queues[(0, 0)]
    assert loop in colors.of(net.channel_of(ej.i))
    # the self-send never crosses the link
    for queue in fabric.link_queues:
        assert loop not in colors.of(net.channel_of(queue.i))


def test_vcs_create_per_vc_queues():
    config = MeshConfig(2, 2, queue_size=2, vcs=2, vc_of=request_response_vc)
    net, fabric = closed_mesh(config)
    # per node: 2 links * 2 vcs + 2 injection vcs + 1 ejection = 7 queues
    assert net.stats()["queues"] == 28
    assert len(fabric.injection_queues[(0, 0)]) == 2


def test_vc_assignment_separates_traffic():
    config = MeshConfig(2, 2, queue_size=2, vcs=2, vc_of=request_response_vc)
    builder = NetworkBuilder("vc-test")
    fabric = build_mesh(builder, config)
    topology = config.topology
    for node in topology.nodes():
        others = [n for n in topology.nodes() if n != node]
        colors = set()
        for other in others:
            colors.add(Message("getX", src=node, dst=other))
            colors.add(Message("ack", src=node, dst=other))
        src = builder.source(f"src_{node[0]}_{node[1]}", colors=colors)
        snk = builder.sink(f"snk_{node[0]}_{node[1]}")
        builder.connect(src.o, fabric.inject_ports[node])
        builder.connect(fabric.deliver_ports[node], snk.i)
    net = builder.build()
    colors = derive_colors(net)
    for queue in fabric.link_queues:
        vc = int(queue.name.rsplit("_v", 1)[1])
        for color in colors.of(net.channel_of(queue.i)):
            assert color.vc == vc


def test_mesh_requires_two_nodes():
    with pytest.raises(ValueError):
        MeshConfig(1, 1, queue_size=1)


def test_vcs_require_assignment():
    with pytest.raises(ValueError):
        MeshConfig(2, 2, queue_size=1, vcs=2)


def test_injection_and_ejection_sizes():
    config = MeshConfig(2, 2, queue_size=5, injection_size=1, ejection_size=7)
    _, fabric = closed_mesh(config)
    assert all(q.size == 1 for qs in fabric.injection_queues.values() for q in qs)
    assert all(q.size == 7 for q in fabric.ejection_queues.values())
    assert all(q.size == 5 for q in fabric.link_queues)
