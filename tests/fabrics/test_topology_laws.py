"""Property-based laws every :class:`Topology` implementation must obey.

The fabric builder trusts these invariants blindly — a queue pair per
link assumes link symmetry, the route switches assume every routing step
names a real port, and deadline/escape-VC wiring assumes routing
terminates.  Hypothesis sweeps them across mesh / torus / ring shapes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabrics import (
    MeshTopology,
    RingTopology,
    TorusTopology,
    route_path,
)
from repro.protocols import Message

dims = st.integers(min_value=1, max_value=5)
torus_dims = st.integers(min_value=2, max_value=5)
ring_sizes = st.integers(min_value=2, max_value=9)

topologies = st.one_of(
    st.builds(MeshTopology, dims, dims),
    st.builds(TorusTopology, torus_dims, torus_dims),
    st.builds(RingTopology, ring_sizes),
)


def pick_node(draw, topology):
    nodes = list(topology.nodes())
    return nodes[draw(st.integers(min_value=0, max_value=len(nodes) - 1))]


@st.composite
def topology_and_node(draw):
    topology = draw(topologies)
    return topology, pick_node(draw, topology)


@st.composite
def topology_and_pair(draw):
    topology = draw(topologies)
    return topology, pick_node(draw, topology), pick_node(draw, topology)


@given(topology_and_node())
def test_link_symmetry(case):
    """neighbour(neighbour(n, p), opposite(p)) == n on every live link."""
    topology, node = case
    for port in topology.ports(node):
        other = topology.neighbour(node, port)
        if other is None:  # mesh edge
            continue
        back = topology.opposite(port)
        assert back in topology.ports(other)
        assert topology.neighbour(other, back) == node


@given(topology_and_node())
def test_opposite_is_an_involution(case):
    topology, node = case
    for port in topology.ports(node):
        assert topology.opposite(topology.opposite(port)) == port


@given(topologies)
def test_node_count_matches_iteration(topology):
    nodes = list(topology.nodes())
    assert topology.node_count() == len(nodes)
    assert len(set(nodes)) == len(nodes)  # no duplicates


@given(topology_and_node())
def test_degree_bounds(case):
    """Degree ∈ [1, 4] wherever the fabric has more than one node; every
    port's neighbour is a topology node (or a mesh edge)."""
    topology, node = case
    ports = topology.ports(node)
    if topology.node_count() > 1:
        assert 1 <= len(ports) <= 4
    nodes = set(topology.nodes())
    for port in ports:
        other = topology.neighbour(node, port)
        assert other is None or other in nodes


@given(topologies)
def test_probe_positions_are_nodes(topology):
    nodes = set(topology.nodes())
    probes = topology.probe_positions()
    assert probes, "every topology has at least one probe orbit"
    assert set(probes) <= nodes
    assert len(set(probes)) == len(probes)


@given(topology_and_pair())
@settings(max_examples=200)
def test_routing_terminates_at_destination(case):
    """Default routing reaches dst from every src without cycling, and
    every intermediate hop uses a real port of the node it leaves."""
    topology, src, dst = case
    message = Message("getX", src=src, dst=dst)
    bound = 4 * topology.node_count() + 4
    path = route_path(
        topology.routing(), src, message, max_hops=bound, topology=topology
    )
    assert path[0] == src
    assert path[-1] == dst
    assert len(path) <= topology.node_count()  # minimal-ish: never revisits
    assert len(set(path)) == len(path)


@given(topology_and_pair())
def test_named_routings_terminate(case):
    topology, src, dst = case
    message = Message("getX", src=src, dst=dst)
    for name in topology.routing_names():
        path = route_path(
            topology.routing(name),
            src,
            message,
            max_hops=4 * topology.node_count() + 4,
            topology=topology,
        )
        assert path[-1] == dst


@given(st.builds(TorusTopology, torus_dims, torus_dims))
def test_torus_escape_bit_is_binary_and_wrap_only(topology):
    """Dateline bits are 0/1, and journeys that never wrap stay on VC 0."""
    nodes = list(topology.nodes())
    src, dst = nodes[0], nodes[-1]
    message = Message("getX", src=src, dst=dst)
    for node in nodes:
        for port in topology.ports(node):
            assert topology.escape_vc_bit(node, port, message) in (0, 1)
    # src (0,0) → dst (w-1,h-1) travels WEST/NORTH the short way or
    # EAST/SOUTH across the wrap — either way a same-node message never
    # raises the bit:
    local = Message("getX", src=src, dst=src)
    for port in topology.ports(src):
        assert topology.escape_vc_bit(src, port, local) == 0
