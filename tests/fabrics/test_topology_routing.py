"""Tests for mesh topology and routing functions."""

import pytest

from repro.fabrics import Direction, MeshTopology, route_path, xy_routing, yx_routing
from repro.protocols import Message


def msg(src, dst):
    return Message("getX", src=src, dst=dst)


def test_topology_nodes_and_count():
    topo = MeshTopology(3, 2)
    assert topo.node_count() == 6
    assert list(topo.nodes())[0] == (0, 0)
    assert topo.contains((2, 1))
    assert not topo.contains((3, 0))


def test_topology_rejects_empty():
    with pytest.raises(ValueError):
        MeshTopology(0, 3)


def test_neighbours_corner():
    topo = MeshTopology(3, 3)
    neighbours = topo.neighbours((0, 0))
    assert set(neighbours) == {Direction.EAST, Direction.SOUTH}
    assert neighbours[Direction.EAST] == (1, 0)


def test_neighbours_centre():
    topo = MeshTopology(3, 3)
    assert len(topo.neighbours((1, 1))) == 4


def test_direction_opposites():
    assert Direction.NORTH.opposite is Direction.SOUTH
    assert Direction.EAST.opposite is Direction.WEST


def test_xy_routing_x_first():
    assert xy_routing((0, 0), msg((0, 0), (2, 2))) is Direction.EAST
    assert xy_routing((2, 0), msg((0, 0), (2, 2))) is Direction.SOUTH
    assert xy_routing((2, 2), msg((0, 0), (2, 2))) is None


def test_xy_routing_westward_and_north():
    assert xy_routing((2, 2), msg((2, 2), (0, 0))) is Direction.WEST
    assert xy_routing((0, 2), msg((2, 2), (0, 0))) is Direction.NORTH


def test_yx_routing_y_first():
    assert yx_routing((0, 0), msg((0, 0), (2, 2))) is Direction.SOUTH
    assert yx_routing((0, 2), msg((0, 0), (2, 2))) is Direction.EAST


def test_route_path_xy():
    path = route_path(xy_routing, (0, 0), msg((0, 0), (2, 1)))
    assert path == [(0, 0), (1, 0), (2, 0), (2, 1)]


def test_route_path_self():
    assert route_path(xy_routing, (1, 1), msg((0, 0), (1, 1))) == [(1, 1)]


def test_route_path_detects_divergence():
    def bad_routing(node, message):
        return Direction.EAST  # never arrives

    with pytest.raises(RuntimeError):
        route_path(bad_routing, (0, 0), msg((0, 0), (1, 0)), max_hops=8)


def test_xy_never_turns_y_to_x():
    """The XY turn restriction: once travelling in y, never in x again."""
    topo = MeshTopology(4, 4)
    for src in topo.nodes():
        for dst in topo.nodes():
            path = route_path(xy_routing, src, msg(src, dst))
            seen_y = False
            for a, b in zip(path, path[1:]):
                moved_x = a[0] != b[0]
                if seen_y:
                    assert not moved_x, f"Y->X turn on {src}->{dst}"
                if a[1] != b[1]:
                    seen_y = True


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
def test_octant_positions_fold_the_full_symmetry_group():
    """The deprecated alias (exercised on purpose) must keep folding the
    full symmetry group — old drivers' probe lists stay byte-identical."""
    from repro.fabrics import octant_positions

    # Square meshes fold x-, y- and diagonal reflections.
    assert octant_positions(2, 2) == [(0, 0)]
    assert octant_positions(3, 3) == [(0, 0), (1, 0), (1, 1)]
    # Rectangles have no diagonal symmetry: the middle-row orbit of the
    # 2x3 mesh needs its own representative.
    assert octant_positions(2, 3) == [(0, 0), (0, 1)]
    assert octant_positions(4, 4) == [(0, 0), (1, 0), (1, 1)]
    # Every node must be reachable from a representative via reflections.
    for width, height in ((2, 2), (2, 3), (3, 3), (3, 4)):
        reps = octant_positions(width, height)
        covered = set()
        for x, y in reps:
            images = {(x, y), (width - 1 - x, y), (x, height - 1 - y),
                      (width - 1 - x, height - 1 - y)}
            if width == height:
                images |= {(iy, ix) for ix, iy in images}
            covered |= images
        assert covered == {
            (x, y) for x in range(width) for y in range(height)
        }, (width, height)
