"""Integration tests: the paper's case study end to end (E3, E5, E6, E9)."""

import pytest

from repro import Verdict, verify
from repro.core import VarPool, derive_colors, generate_invariants, minimal_queue_size
from repro.linalg import SparseVector, row_space_contains
from repro.mc import Explorer, check_handshake_composition
from repro.protocols import Message, abstract_mi_mesh, mi_mesh
from repro.protocols.abstract_mi import abstract_mi_ether


class TestE3Figure3:
    """2×2 mesh, abstract MI: deadlock at size 2, free at size 3."""

    def test_queue_size_2_deadlocks(self):
        result = verify(abstract_mi_mesh(2, 2, queue_size=2).network)
        assert result.verdict is Verdict.DEADLOCK_CANDIDATE

    def test_queue_size_3_deadlock_free(self):
        result = verify(abstract_mi_mesh(2, 2, queue_size=3).network)
        assert result.verdict is Verdict.DEADLOCK_FREE

    def test_minimal_size_is_3(self):
        sizing = minimal_queue_size(
            lambda q: abstract_mi_mesh(2, 2, queue_size=q).network,
            exhaustive=True,
        )
        assert sizing.minimal_size == 3

    def test_size_2_witness_is_reachable(self):
        from repro.core import enumerate_witnesses

        inst = abstract_mi_mesh(2, 2, queue_size=2)
        explorer = Explorer(inst.network)
        assert any(
            explorer.confirm_witness(
                witness.automaton_states,
                witness.queue_contents,
                max_states=400_000,
            ).found_deadlock
            for witness in enumerate_witnesses(inst.network, limit=12)
        )

    def test_size_3_exhaustively_free_in_mc(self):
        result = Explorer(
            abstract_mi_mesh(2, 2, queue_size=3).network
        ).find_deadlock(max_states=500_000)
        assert result.exhausted and not result.found_deadlock


class TestE5Invariants:
    """Section 5: invariants (3) and (4) for the 2×2 case study."""

    @pytest.fixture(scope="class")
    def generated(self):
        inst = abstract_mi_mesh(2, 2, queue_size=2)
        pool = VarPool()
        colors = derive_colors(inst.network)
        invariants = generate_invariants(inst.network, colors, pool)
        return inst, pool, invariants

    @staticmethod
    def rows(invariants):
        result = []
        for inv in invariants:
            entries = {var.uid: coeff for var, coeff in inv.coeffs}
            if inv.constant:
                entries[0] = inv.constant
            result.append(SparseVector(entries))
        return result

    def all_queue_vars(self, inst, pool, message):
        """Occupancy vars of `message` over every queue it can traverse."""
        colors = derive_colors(inst.network)
        variables = []
        for queue in inst.network.queues():
            if message in colors.of(inst.network.channel_of(queue.i)):
                variables.append(pool.occupancy(queue, message))
        return variables

    def test_equation_3_per_cache(self, generated):
        """1 = Σ #getX(c) + Σ #ack(c) + c.I + d.M(c) + d.MI(c)."""
        inst, pool, invariants = generated
        rows = self.rows(invariants)
        dir_node = inst.directory_node
        for c, cache in inst.caches.items():
            entries = {0: -1}  # constant: ... = 1
            getx = Message("getX", src=c, dst=dir_node)
            ack = Message("ack", src=dir_node, dst=c)
            for var in self.all_queue_vars(inst, pool, getx):
                entries[var.uid] = 1
            for var in self.all_queue_vars(inst, pool, ack):
                entries[var.uid] = 1
            entries[pool.state(cache, "I").uid] = 1
            entries[pool.state(inst.directory, f"M_{c[0]}_{c[1]}").uid] = 1
            entries[pool.state(inst.directory, f"MI_{c[0]}_{c[1]}").uid] = 1
            assert row_space_contains(rows, SparseVector(entries)), (
                f"paper invariant (3) for cache {c} not derivable"
            )

    def test_equation_4_per_cache(self, generated):
        """d.MI(c) = Σ #putX(c) + Σ #inv(c)."""
        inst, pool, invariants = generated
        rows = self.rows(invariants)
        dir_node = inst.directory_node
        for c in inst.caches:
            entries = {}
            putx = Message("putX", src=c, dst=dir_node)
            inv = Message("inv", src=dir_node, dst=c)
            for var in self.all_queue_vars(inst, pool, putx):
                entries[var.uid] = 1
            for var in self.all_queue_vars(inst, pool, inv):
                entries[var.uid] = 1
            entries[pool.state(inst.directory, f"MI_{c[0]}_{c[1]}").uid] = -1
            assert row_space_contains(rows, SparseVector(entries)), (
                f"paper invariant (4) for cache {c} not derivable"
            )

    def test_invariants_hold_initially(self, generated):
        inst, pool, invariants = generated
        assignment = {}
        for automaton in inst.network.automata():
            for state in automaton.states:
                assignment[pool.state(automaton, state)] = int(
                    state == automaton.initial
                )
        for invariant in invariants:
            assert invariant.evaluate(assignment)


class TestE6VirtualChannels:
    """VCs do not resolve the deadlock but matter for sizing."""

    def test_deadlock_survives_vcs(self):
        result = verify(abstract_mi_mesh(2, 2, queue_size=2, vcs=2).network)
        assert result.verdict is Verdict.DEADLOCK_CANDIDATE

    def test_vcs_verify_at_size_3(self):
        result = verify(abstract_mi_mesh(2, 2, queue_size=3, vcs=2).network)
        assert result.verdict is Verdict.DEADLOCK_FREE


class TestE9HandshakeBaseline:
    def test_abstract_protocol_free_under_handshake(self):
        assert check_handshake_composition(abstract_mi_ether(2, 2)).deadlock_free

    def test_abstract_protocol_3x3_free_under_handshake(self):
        assert check_handshake_composition(abstract_mi_ether(3, 3)).deadlock_free


class TestE8FullMI:
    def test_full_mi_smt_finds_real_deadlock_at_q2(self):
        inst = mi_mesh(2, 2, queue_size=2)
        result = verify(inst.network)
        assert result.verdict is Verdict.DEADLOCK_CANDIDATE
        confirm = Explorer(inst.network).find_deadlock(max_states=500_000)
        assert confirm.found_deadlock

    def test_full_mi_q3_mc_ground_truth_free(self):
        result = Explorer(mi_mesh(2, 2, queue_size=3).network).find_deadlock(
            max_states=2_000_000
        )
        assert result.exhausted and not result.found_deadlock

    def test_full_mi_invariant_count_reported(self):
        result = verify(mi_mesh(2, 2, queue_size=2).network)
        # the paper reports 14 invariants in its 2x2 setting; we report our
        # basis size (layout differs: 2 caches + dma instead of 3 caches)
        assert result.stats["invariant_count"] >= 10


class TestDirectoryPlacement:
    def test_2x3_directory_positions(self):
        # minimal size must not depend on queue-irrelevant details and must
        # be computable for non-corner directories too
        sizes = {}
        for position in ((0, 0), (1, 1)):
            sizing = minimal_queue_size(
                lambda q, p=position: abstract_mi_mesh(
                    2, 2, queue_size=q, directory_node=p
                ).network
            )
            sizes[position] = sizing.minimal_size
        assert sizes[(0, 0)] == sizes[(1, 1)] == 3
