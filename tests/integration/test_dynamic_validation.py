"""Dynamic cross-validation: static analyses vs executable semantics.

The strongest correctness evidence in the repository: the invariants that
Gaussian elimination derives *statically* must hold in every state of
every *actual execution*, and the color sets that T-derivation computes
must cover every packet that ever materialises in a queue.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VarPool, derive_colors, generate_invariants
from repro.mc import Executable
from repro.mc.simulator import random_run
from repro.netlib import running_example, token_ring
from repro.protocols import abstract_mi_mesh, mi_mesh


def assert_invariants_hold_along_run(network, steps, seed):
    pool = VarPool()
    colors = derive_colors(network)
    invariants = generate_invariants(network, colors, pool)
    assert invariants
    space = Executable(network).space
    queues = {q.name: q for q in network.queues()}
    automata = {a.name: a for a in network.automata()}

    def valuation(state):
        assignment = {}
        for name, local in zip(space.automaton_names, state.automaton_states):
            for s in automata[name].states:
                assignment[pool.state(automata[name], s)] = int(s == local)
        for name, contents in zip(space.queue_names, state.queue_contents):
            for color in set(contents):
                assignment[pool.occupancy(queues[name], color)] = contents.count(
                    color
                )
        return assignment

    states = [space.initial_state()]
    for _, state in random_run(network, steps=steps, seed=seed):
        states.append(state)
    for state in states:
        assignment = valuation(state)
        for invariant in invariants:
            assert invariant.evaluate(assignment), (
                f"invariant {invariant.pretty()} violated in "
                f"{state.describe(space)}"
            )


def assert_colors_cover_run(network, steps, seed):
    colors = derive_colors(network)
    space = Executable(network).space
    queues = {q.name: q for q in network.queues()}
    for _, state in random_run(network, steps=steps, seed=seed):
        for name, contents in zip(space.queue_names, state.queue_contents):
            derivable = colors.of(network.channel_of(queues[name].i))
            for packet in contents:
                assert packet in derivable, (
                    f"packet {packet!r} in {name} outside derived colors"
                )


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_running_example_invariants_hold_dynamically(seed):
    assert_invariants_hold_along_run(running_example().network, 60, seed)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=6, deadline=None)
def test_abstract_mi_invariants_hold_dynamically(seed):
    network = abstract_mi_mesh(2, 2, queue_size=3).network
    assert_invariants_hold_along_run(network, 80, seed)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=4, deadline=None)
def test_full_mi_invariants_hold_dynamically(seed):
    network = mi_mesh(2, 2, queue_size=3).network
    assert_invariants_hold_along_run(network, 80, seed)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_colors_cover_abstract_mi_runs(seed):
    assert_colors_cover_run(abstract_mi_mesh(2, 2, queue_size=2).network, 80, seed)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_colors_cover_full_mi_runs(seed):
    assert_colors_cover_run(mi_mesh(2, 2, queue_size=2).network, 80, seed)


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=10, deadline=None)
def test_colors_cover_token_ring_runs(seed):
    assert_colors_cover_run(token_ring(4, queue_size=2), 50, seed)


def test_simulator_stops_in_dead_state():
    from repro.xmas import NetworkBuilder

    builder = NetworkBuilder()
    src = builder.source("src", colors={"x"})
    q = builder.queue("q", 1)
    snk = builder.sink("snk", fair=False)
    builder.pipeline(src.o, q.i, q.o, snk.i)
    network = builder.build()
    steps = list(random_run(network, steps=10, seed=1))
    assert len(steps) == 1  # inject once, then stuck forever
