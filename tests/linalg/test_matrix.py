"""Unit tests for the sparse Gaussian elimination kernels."""

from fractions import Fraction

from repro.linalg import (
    SparseVector,
    eliminate_columns,
    rank,
    row_space_contains,
    rref,
)


def vec(**cols: int) -> SparseVector:
    """Build a vector from x0=..., x1=... keyword shorthand."""
    return SparseVector({int(name[1:]): value for name, value in cols.items()})


def test_rref_identity_like():
    rows = [vec(x0=2), vec(x1=3)]
    reduced, pivots = rref(rows)
    assert pivots == [0, 1]
    assert reduced[0] == vec(x0=1)
    assert reduced[1] == vec(x1=1)


def test_rref_eliminates_dependent_rows():
    rows = [vec(x0=1, x1=1), vec(x0=2, x1=2)]
    reduced, pivots = rref(rows)
    assert len(reduced) == 1
    assert pivots == [0]


def test_rref_back_substitutes():
    rows = [vec(x0=1, x1=1), vec(x1=1)]
    reduced, _ = rref(rows)
    # Gauss-Jordan: x1 must be removed from the first row.
    assert reduced[0] == vec(x0=1)
    assert reduced[1] == vec(x1=1)


def test_rref_with_custom_pivot_order():
    # Prefer pivoting on high column indices.
    rows = [vec(x0=1, x5=1)]
    _, pivots = rref(rows, pivot_key=lambda col: -col)
    assert pivots == [5]


def test_rref_does_not_mutate_input():
    row = vec(x0=2, x1=4)
    rref([row])
    assert row == vec(x0=2, x1=4)


def test_rank():
    rows = [vec(x0=1, x1=1), vec(x1=1, x2=1), vec(x0=1, x2=-1)]
    assert rank(rows) == 2


def test_rank_of_empty_and_zero():
    assert rank([]) == 0
    assert rank([SparseVector()]) == 0


def test_eliminate_columns_simple_chain():
    # lambda0 = lambda1 + q  and  lambda1 = lambda2, lambda2 = s
    # eliminating lambdas leaves a relation between q and s: none here
    # (the chain ends in s, a kept column), so we get q + s - lambda0 ... no:
    # rows are homogeneous equations "row = 0".
    lam0, lam1, q, s = 0, 1, 2, 3
    rows = [
        SparseVector({lam0: 1, lam1: -1, q: -1}),  # lam0 - lam1 - q = 0
        SparseVector({lam0: 1, lam1: -1, s: -1}),  # lam0 - lam1 - s = 0
    ]
    result = eliminate_columns(rows, {lam0, lam1})
    # Subtracting gives s - q = 0.
    assert len(result) == 1
    assert result[0].support() == frozenset({q, s})
    assert result[0][q] == -result[0][s]


def test_eliminate_columns_no_invariant_survives():
    rows = [SparseVector({0: 1, 2: 1})]
    assert eliminate_columns(rows, {0}) == []


def test_eliminate_columns_keeps_already_free_rows():
    free = SparseVector({5: 1, 6: -1})
    result = eliminate_columns([free], {0, 1})
    assert result == [free]


def test_eliminate_columns_three_way():
    # Flow conservation around a fork: l0 = l1, l0 = l2, l1 = q1, l2 = q2
    l0, l1, l2, q1, q2 = range(5)
    rows = [
        SparseVector({l0: 1, l1: -1}),
        SparseVector({l0: 1, l2: -1}),
        SparseVector({l1: 1, q1: -1}),
        SparseVector({l2: 1, q2: -1}),
    ]
    result = eliminate_columns(rows, {l0, l1, l2})
    assert len(result) == 1
    assert result[0].support() == frozenset({q1, q2})


def test_eliminate_result_lies_in_row_space():
    l0, l1, a, b = range(4)
    rows = [
        SparseVector({l0: 1, a: 2, b: -1}),
        SparseVector({l0: 1, l1: 1, b: 1}),
        SparseVector({l1: 1, a: 1}),
    ]
    for invariant in eliminate_columns(rows, {l0, l1}):
        assert row_space_contains(rows, invariant)


def test_row_space_contains_positive_and_negative():
    rows = [vec(x0=1, x1=1), vec(x1=1)]
    assert row_space_contains(rows, vec(x0=3, x1=5))
    assert not row_space_contains(rows, vec(x2=1))


def test_fractional_pivoting_is_exact():
    rows = [
        SparseVector({0: Fraction(1, 3), 1: Fraction(1, 7)}),
        SparseVector({0: Fraction(2, 3), 1: Fraction(2, 7), 2: Fraction(1)}),
    ]
    reduced, pivots = rref(rows)
    assert pivots == [0, 2]
    assert reduced[0][1] == Fraction(3, 7)
