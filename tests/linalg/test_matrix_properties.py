"""Property-based tests for the elimination kernels."""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    SparseVector,
    eliminate_columns,
    rank,
    row_space_contains,
    rref,
)

N_COLS = 6

coefficients = st.integers(min_value=-4, max_value=4)
rows_strategy = st.lists(
    st.builds(
        SparseVector,
        st.dictionaries(
            st.integers(min_value=0, max_value=N_COLS - 1), coefficients, max_size=4
        ),
    ),
    max_size=6,
)


@given(rows_strategy)
def test_rref_is_idempotent(rows):
    once, pivots_once = rref(rows)
    twice, pivots_twice = rref(once)
    assert once == twice
    assert pivots_once == pivots_twice


@given(rows_strategy)
def test_rref_preserves_row_space(rows):
    reduced, _ = rref(rows)
    for row in rows:
        assert row_space_contains(reduced, row)
    for row in reduced:
        assert row_space_contains(rows, row)


@given(rows_strategy)
def test_rref_pivots_are_unit_and_unique(rows):
    reduced, pivots = rref(rows)
    assert len(set(pivots)) == len(pivots)
    for pivot, row in zip(pivots, reduced):
        assert row[pivot] == 1
        for other in reduced:
            if other is not row:
                assert pivot not in other


@given(rows_strategy)
def test_rank_bounded(rows):
    r = rank(rows)
    assert 0 <= r <= min(len(rows), N_COLS)


@given(rows_strategy, st.sets(st.integers(min_value=0, max_value=N_COLS - 1), max_size=3))
def test_eliminated_columns_are_absent(rows, eliminate):
    for row in eliminate_columns(rows, eliminate):
        assert not (row.support() & eliminate)


@given(rows_strategy, st.sets(st.integers(min_value=0, max_value=N_COLS - 1), max_size=3))
def test_eliminate_output_in_row_space(rows, eliminate):
    for row in eliminate_columns(rows, eliminate):
        assert row_space_contains(rows, row)


@given(rows_strategy, st.sets(st.integers(min_value=0, max_value=N_COLS - 1), max_size=3))
@settings(max_examples=50)
def test_eliminate_is_complete(rows, eliminate):
    """Any eliminate-free vector of the row space is spanned by the output."""
    survivors = eliminate_columns(rows, eliminate)
    reduced, pivots = rref(rows)
    # Build candidate eliminate-free members of the row space by combining
    # reduced rows and checking the combination support; brute force over
    # small coefficient combinations of at most two rows.
    for i, row_i in enumerate(reduced):
        if not (row_i.support() & eliminate):
            assert row_space_contains(survivors, row_i)
        for row_j in reduced[i + 1:]:
            combo = row_i + row_j
            if combo and not (combo.support() & eliminate):
                assert row_space_contains(survivors, combo)


@given(rows_strategy)
def test_normalized_rows_evaluate_identically(rows):
    assignment = {col: Fraction(col + 1, 2) for col in range(N_COLS)}
    for row in rows:
        if not row:
            continue
        norm = row.normalized_integer()
        lhs = row.dot(assignment)
        rhs = norm.dot(assignment)
        # They are scalar multiples: zero sets must agree.
        assert (lhs == 0) == (rhs == 0)
