"""Unit tests for SparseVector."""

from fractions import Fraction

from repro.linalg import SparseVector


def test_zero_entries_are_dropped_on_construction():
    vec = SparseVector({0: 0, 1: Fraction(2), 2: Fraction(0)})
    assert vec.support() == frozenset({1})
    assert vec[0] == 0
    assert vec[1] == 2


def test_unit_vector():
    vec = SparseVector.unit(7)
    assert vec[7] == 1
    assert len(vec) == 1


def test_truthiness():
    assert not SparseVector()
    assert SparseVector({3: 1})


def test_addition_and_cancellation():
    left = SparseVector({0: 1, 1: 2})
    right = SparseVector({1: -2, 2: 5})
    total = left + right
    assert total.support() == frozenset({0, 2})
    assert total[0] == 1
    assert total[2] == 5


def test_subtraction_gives_zero_vector():
    vec = SparseVector({0: Fraction(1, 3), 5: -2})
    assert not (vec - vec)


def test_scaled_by_zero_is_empty():
    vec = SparseVector({0: 1, 1: 2})
    assert not vec.scaled(0)


def test_scaled_preserves_original():
    vec = SparseVector({0: 1})
    doubled = vec.scaled(2)
    assert vec[0] == 1
    assert doubled[0] == 2


def test_negation():
    vec = SparseVector({0: 1, 1: Fraction(-3, 2)})
    neg = -vec
    assert neg[0] == -1
    assert neg[1] == Fraction(3, 2)


def test_dot_with_assignment():
    vec = SparseVector({0: 2, 1: -1})
    assert vec.dot({0: 3, 1: 4, 9: 100}) == 2
    assert vec.dot({}) == 0


def test_add_scaled_inplace_removes_cancelled_columns():
    vec = SparseVector({0: 1, 1: 1})
    vec.add_scaled_inplace(SparseVector({1: 1}), -1)
    assert vec.support() == frozenset({0})


def test_add_scaled_inplace_zero_factor_is_noop():
    vec = SparseVector({0: 1})
    vec.add_scaled_inplace(SparseVector({5: 99}), 0)
    assert vec.support() == frozenset({0})


def test_scale_inplace_zero_clears():
    vec = SparseVector({0: 1, 1: 2})
    vec.scale_inplace(0)
    assert not vec


def test_equality_and_hash():
    a = SparseVector({0: Fraction(1, 2)})
    b = SparseVector({0: Fraction(2, 4)})
    assert a == b
    assert hash(a) == hash(b)
    assert a != SparseVector({0: 1})


def test_normalized_integer_clears_denominators():
    vec = SparseVector({0: Fraction(1, 2), 1: Fraction(1, 3)})
    norm = vec.normalized_integer()
    assert norm[0] == 3
    assert norm[1] == 2


def test_normalized_integer_reduces_common_factor():
    vec = SparseVector({0: 4, 1: 6})
    norm = vec.normalized_integer()
    assert norm[0] == 2
    assert norm[1] == 3


def test_normalized_integer_canonical_sign():
    vec = SparseVector({2: -1, 5: 3})
    norm = vec.normalized_integer()
    assert norm[2] == 1
    assert norm[5] == -3


def test_normalized_integer_of_zero_vector():
    assert not SparseVector().normalized_integer()


def test_repr_is_sorted_and_stable():
    vec = SparseVector({5: 1, 1: 2})
    assert repr(vec) == "SparseVector({1: 2, 5: 1})"


def test_getitem_missing_is_zero_fraction():
    value = SparseVector()[42]
    assert value == 0
    assert isinstance(value, Fraction)


def test_contains():
    vec = SparseVector({3: 1})
    assert 3 in vec
    assert 4 not in vec


def test_iteration_yields_pairs():
    vec = SparseVector({1: 2, 3: 4})
    assert dict(iter(vec)) == {1: Fraction(2), 3: Fraction(4)}
