"""Tests for the executable xMAS semantics."""

from repro.mc import Executable, Explorer
from repro.netlib import producer_consumer, running_example, token_ring
from repro.protocols import Message
from repro.xmas import NetworkBuilder


def test_producer_consumer_inject_and_drain():
    net = producer_consumer(queue_size=1)
    executable = Executable(net)
    initial = executable.space.initial_state()
    steps = list(executable.successors(initial))
    assert len(steps) == 1  # inject into the empty queue
    (step, after), = steps
    assert step[0] == "inject"
    assert after.queue_contents[0] == ("pkt",)
    # head advance into the sink empties the queue again
    follow = list(executable.successors(after))
    kinds = {s[0] for s, _ in follow}
    assert "advance" in kinds


def test_full_queue_blocks_injection():
    net = producer_consumer(queue_size=1)
    executable = Executable(net)
    state = executable.space.initial_state()
    state = executable.space.with_queue(state, 0, ("pkt",))
    injects = [
        s for s, _ in executable.successors(state) if s[0] == "inject"
    ]
    assert not injects


def test_dead_sink_blocks_forever():
    builder = NetworkBuilder()
    src = builder.source("src", colors={"x"})
    q = builder.queue("q", 1)
    snk = builder.sink("snk", fair=False)
    builder.pipeline(src.o, q.i, q.o, snk.i)
    net = builder.build()
    explorer = Explorer(net)
    result = explorer.find_deadlock()
    assert result.found_deadlock
    assert result.deadlock.queue_contents[0] == ("x",)


def test_running_example_statespace_exact():
    example = running_example()
    explorer = Explorer(example.network)
    result = explorer.find_deadlock()
    assert result.exhausted
    assert not result.found_deadlock
    # States: (s0,t0,empty), (s1,t0,req), (s1,t1,empty), (s1,t0,ack->s0...)
    assert result.states_explored == 4


def test_token_ring_keeps_token_count():
    net = token_ring(3, queue_size=1)
    executable = Executable(net)
    seen_counts = set()
    state = executable.space.initial_state()
    frontier = [state]
    visited = {state}
    while frontier:
        current = frontier.pop()
        seen_counts.add(sum(len(c) for c in current.queue_contents))
        for _, successor in executable.successors(current):
            if successor not in visited and len(visited) < 200:
                visited.add(successor)
                frontier.append(successor)
    # the merge admits at most the injected tokens; counts stay small and
    # never negative
    assert min(seen_counts) == 0
    assert max(seen_counts) <= 3


def test_switch_routes_in_execution():
    builder = NetworkBuilder()
    src = builder.source("src", colors={0, 1})
    sw = builder.switch("sw", route=lambda d: d, n_outputs=2)
    q0 = builder.queue("q0", 1)
    q1 = builder.queue("q1", 1)
    s0, s1 = builder.sink("s0"), builder.sink("s1")
    builder.connect(src.o, sw.i)
    builder.connect(sw.outs[0], q0.i)
    builder.connect(sw.outs[1], q1.i)
    builder.connect(q0.o, s0.i)
    builder.connect(q1.o, s1.i)
    net = builder.build()
    executable = Executable(net)
    state = executable.space.initial_state()
    results = {}
    for step, successor in executable.successors(state):
        results[step[2]] = successor
    zero_state = results["0"]
    q0_index = executable.space.queue_index["q0"]
    assert zero_state.queue_contents[q0_index] == (0,)


def test_fork_requires_both_branches():
    builder = NetworkBuilder()
    src = builder.source("src", colors={"x"})
    fork = builder.fork("f")
    qa = builder.queue("qa", 1)
    qb = builder.queue("qb", 1)
    sa, sb = builder.sink("sa"), builder.sink("sb")
    builder.connect(src.o, fork.i)
    builder.connect(fork.a, qa.i)
    builder.connect(fork.b, qb.i)
    builder.connect(qa.o, sa.i)
    builder.connect(qb.o, sb.i)
    net = builder.build()
    executable = Executable(net)
    state = executable.space.initial_state()
    qb_index = executable.space.queue_index["qb"]
    full_b = executable.space.with_queue(state, qb_index, ("x",))
    injects = [s for s, _ in executable.successors(full_b) if s[0] == "inject"]
    assert not injects  # fork blocked because branch b is full
    both = list(executable.successors(state))
    inject_results = [ns for s, ns in both if s[0] == "inject"]
    assert inject_results
    assert inject_results[0].queue_contents[qb_index] == ("x",)


def test_join_synchronises_with_queue_partner():
    builder = NetworkBuilder()
    data_src = builder.source("data", colors={"d"})
    token_q = builder.queue("tq", 1)
    token_src = builder.source("tok", colors={"t"})
    join = builder.join("j", combine=lambda da, db: (da, db))
    out_q = builder.queue("oq", 1)
    snk = builder.sink("snk")
    builder.connect(data_src.o, join.a)
    builder.connect(token_src.o, token_q.i)
    builder.connect(token_q.o, join.b)
    builder.connect(join.o, out_q.i)
    builder.connect(out_q.o, snk.i)
    net = builder.build()
    executable = Executable(net)
    state = executable.space.initial_state()
    # without a token in tq, the data source cannot fire through the join
    data_injects = [
        s for s, _ in executable.successors(state)
        if s[0] == "inject" and s[1] == "data"
    ]
    assert not data_injects
    tq = executable.space.queue_index["tq"]
    oq = executable.space.queue_index["oq"]
    with_token = executable.space.with_queue(state, tq, ("t",))
    fired = [
        ns for s, ns in executable.successors(with_token)
        if s[0] == "inject" and s[1] == "data"
    ]
    assert fired
    assert fired[0].queue_contents[oq] == (("d", "t"),)
    assert fired[0].queue_contents[tq] == ()


def test_rotation_only_when_stuck():
    builder = NetworkBuilder()
    src = builder.source("src", colors={Message("a", (0, 0), (0, 0)),
                                        Message("b", (0, 0), (0, 0))})
    q = builder.queue("q", 2, rotating=True)
    snk = builder.sink("snk", fair=False)  # dead sink: heads always stuck
    builder.pipeline(src.o, q.i, q.o, snk.i)
    net = builder.build()
    executable = Executable(net)
    state = executable.space.initial_state()
    a = Message("a", (0, 0), (0, 0))
    b = Message("b", (0, 0), (0, 0))
    two = executable.space.with_queue(state, 0, (a, b))
    rotations = [
        (s, ns) for s, ns in executable.successors(two) if s[0] == "rotate"
    ]
    assert len(rotations) == 1
    _, rotated = rotations[0]
    assert rotated.queue_contents[0] == (b, a)


def test_no_rotation_for_nonrotating_queue():
    net = producer_consumer(queue_size=2)
    executable = Executable(net)
    state = executable.space.with_queue(
        executable.space.initial_state(), 0, ("pkt", "pkt")
    )
    assert not list(executable.rotation_successors(state))


def test_is_dead_simple():
    builder = NetworkBuilder()
    src = builder.source("src", colors={"x"})
    q = builder.queue("q", 1)
    snk = builder.sink("snk", fair=False)
    builder.pipeline(src.o, q.i, q.o, snk.i)
    net = builder.build()
    executable = Executable(net)
    stuck = executable.space.with_queue(
        executable.space.initial_state(), 0, ("x",)
    )
    assert executable.is_dead(stuck)
    assert not executable.is_dead(executable.space.initial_state())
