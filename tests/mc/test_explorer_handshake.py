"""Tests for the explorer and the handshake baseline (E9)."""

import pytest

from repro.mc import Explorer, check_handshake_composition
from repro.netlib import producer_consumer
from repro.protocols import abstract_mi_mesh, mi_mesh
from repro.protocols.abstract_mi import abstract_mi_ether
from repro.protocols.mi_gem5 import mi_ether
from repro.xmas import NetworkBuilder


def test_explorer_exhausts_small_space():
    result = Explorer(producer_consumer(queue_size=2)).find_deadlock()
    assert result.exhausted
    assert not result.found_deadlock


def test_explorer_trace_replays_to_deadlock():
    builder = NetworkBuilder()
    src = builder.source("src", colors={"x"})
    q = builder.queue("q", 2)
    snk = builder.sink("snk", fair=False)
    builder.pipeline(src.o, q.i, q.o, snk.i)
    explorer = Explorer(builder.build())
    result = explorer.find_deadlock()
    assert result.found_deadlock
    # replay the trace step by step
    state = explorer.space.initial_state()
    for step in result.trace:
        matches = [
            ns for s, ns in explorer.executable.successors(state) if s == step
        ]
        assert matches, f"trace step {step} not enabled"
        state = matches[0]
    assert state == result.deadlock
    assert explorer.executable.is_dead(state)


def test_confirm_witness_matches_shape():
    from repro.core import enumerate_witnesses

    inst = abstract_mi_mesh(2, 2, queue_size=2)
    explorer = Explorer(inst.network)
    confirmed = False
    for witness in enumerate_witnesses(inst.network, limit=12):
        confirmation = explorer.confirm_witness(
            witness.automaton_states,
            witness.queue_contents,
            max_states=400_000,
        )
        if confirmation.found_deadlock:
            confirmed = True
            break
    assert confirmed, (
        "at least one SMT witness at queue size 2 must be reachable"
    )


def test_abstract_mi_q3_exhaustively_free():
    inst = abstract_mi_mesh(2, 2, queue_size=3)
    result = Explorer(inst.network).find_deadlock(max_states=500_000)
    assert result.exhausted
    assert not result.found_deadlock


def test_mi_q2_deadlocks_and_q3_free():
    deadlocked = Explorer(mi_mesh(2, 2, queue_size=2).network).find_deadlock(
        max_states=500_000
    )
    assert deadlocked.found_deadlock
    free = Explorer(mi_mesh(2, 2, queue_size=3).network).find_deadlock(
        max_states=2_000_000
    )
    assert free.exhausted and not free.found_deadlock


def test_handshake_running_example():
    # the Figure-1 protocol under rendezvous is deadlock-free (Section 1)
    # build the queue-free equivalent: S and T exchanging directly
    from repro.xmas import Transition

    builder = NetworkBuilder("rendezvous")
    src_s = builder.source("srcS", colors={"token"})
    src_t = builder.source("srcT", colors={"token"})
    sender = builder.automaton(
        "S", states=["s0", "s1"], initial="s0",
        in_ports=["token", "ack_in"], out_ports=["req_out"],
        transitions=[
            Transition("req!", "s0", "s1", "token", out_port="req_out",
                       produce=lambda _d: "req"),
            Transition("ack?", "s1", "s0", "ack_in",
                       guard=lambda d: d == "ack"),
        ],
    )
    receiver = builder.automaton(
        "T", states=["t0", "t1"], initial="t0",
        in_ports=["req_in", "token"], out_ports=["ack_out"],
        transitions=[
            Transition("req?", "t0", "t1", "req_in",
                       guard=lambda d: d == "req"),
            Transition("ack!", "t1", "t0", "token", out_port="ack_out",
                       produce=lambda _d: "ack"),
        ],
    )
    builder.connect(src_s.o, sender.port("token"))
    builder.connect(src_t.o, receiver.port("token"))
    builder.connect(sender.port("req_out"), receiver.port("req_in"))
    builder.connect(receiver.port("ack_out"), sender.port("ack_in"))
    result = check_handshake_composition(builder.build())
    assert result.deadlock_free
    assert result.states_explored == 2  # (s0,t0) and (s1,t1)


def test_handshake_abstract_mi_free():
    result = check_handshake_composition(abstract_mi_ether(2, 2))
    assert result.deadlock_free


def test_handshake_full_mi_free():
    result = check_handshake_composition(mi_ether(2, 2))
    assert result.deadlock_free


def test_handshake_rejects_networks_with_queues():
    with pytest.raises(ValueError):
        check_handshake_composition(producer_consumer())
