"""Tests for the abstract MI protocol (Figure 2)."""

from repro.protocols import Message, abstract_mi_mesh
from repro.protocols.abstract_mi import (
    ACK,
    GETX,
    INV,
    PUTX,
    abstract_mi_ether,
    request_response_vc,
)


def test_instance_layout_default_directory():
    inst = abstract_mi_mesh(2, 2, queue_size=2)
    assert inst.directory_node == (1, 1)
    assert inst.cache_nodes() == [(0, 0), (0, 1), (1, 0)]


def test_instance_layout_custom_directory():
    inst = abstract_mi_mesh(3, 3, queue_size=2, directory_node=(1, 1))
    assert inst.directory_node == (1, 1)
    assert len(inst.caches) == 8


def test_cache_automaton_shape():
    inst = abstract_mi_mesh(2, 2, queue_size=2)
    cache = inst.caches[(0, 0)]
    assert set(cache.states) == {"I", "M", "MI"}
    assert cache.initial == "I"
    # Figure 2a: exactly three edges in the minimal protocol.
    assert len(cache.transitions) == 3
    names = {t.name for t in cache.transitions}
    assert names == {"get!", "inv?put!", "ack?"}


def test_cache_voluntary_replacement_adds_edges():
    inst = abstract_mi_mesh(2, 2, queue_size=2, voluntary_replacement=True)
    cache = inst.caches[(0, 0)]
    names = {t.name for t in cache.transitions}
    assert "replace!" in names
    assert "staleinv@I" in names and "staleinv@MI" in names


def test_cache_voluntary_without_drops():
    inst = abstract_mi_mesh(
        2, 2, queue_size=2, voluntary_replacement=True, drop_stale_invs=False
    )
    names = {t.name for t in inst.caches[(0, 0)].transitions}
    assert "replace!" in names
    assert "staleinv@I" not in names


def test_directory_states_parameterized_per_cache():
    inst = abstract_mi_mesh(2, 2, queue_size=2)
    directory = inst.directory
    assert "I" in directory.states
    # 1 + 2 * n_caches states
    assert len(directory.states) == 1 + 2 * 3
    for c in inst.cache_nodes():
        assert f"M_{c[0]}_{c[1]}" in directory.states
        assert f"MI_{c[0]}_{c[1]}" in directory.states


def test_directory_no_dead_put_at_m_by_default():
    inst = abstract_mi_mesh(2, 2, queue_size=2)
    for t in inst.directory.transitions:
        if t.name.startswith("put?"):
            assert "@MI_" in t.name


def test_directory_accept_put_in_m_with_voluntary():
    inst = abstract_mi_mesh(2, 2, queue_size=2, voluntary_replacement=True)
    origins = {
        t.origin for t in inst.directory.transitions if t.name.startswith("put?")
    }
    assert any(o.startswith("M_") for o in origins)
    assert any(o.startswith("MI_") for o in origins)


def test_repeat_inv_adds_self_loops():
    inst = abstract_mi_mesh(2, 2, queue_size=2, repeat_inv=True)
    reinv = [t for t in inst.directory.transitions if t.name.startswith("reinv!")]
    assert len(reinv) == 3
    for t in reinv:
        assert t.origin == t.target


def test_guards_distinguish_senders():
    inst = abstract_mi_mesh(2, 2, queue_size=2)
    get_00 = Message(GETX, src=(0, 0), dst=(1, 1))
    get_01 = Message(GETX, src=(0, 1), dst=(1, 1))
    t = next(t for t in inst.directory.transitions if t.name == "get?00")
    assert t.accepts(get_00)
    assert not t.accepts(get_01)
    assert not t.accepts(Message(PUTX, src=(0, 0), dst=(1, 1)))


def test_cache_guards_by_type():
    inst = abstract_mi_mesh(2, 2, queue_size=2)
    cache = inst.caches[(0, 0)]
    inv = Message(INV, src=(1, 1), dst=(0, 0))
    ack = Message(ACK, src=(1, 1), dst=(0, 0))
    inv_t = next(t for t in cache.transitions if t.name == "inv?put!")
    ack_t = next(t for t in cache.transitions if t.name == "ack?")
    assert inv_t.accepts(inv) and not inv_t.accepts(ack)
    assert ack_t.accepts(ack) and not ack_t.accepts(inv)
    out = inv_t.output(inv)
    assert out is not None
    port, packet = out
    assert packet.mtype == PUTX
    assert packet.src == (0, 0)


def test_vc_assignment():
    assert request_response_vc(Message(GETX, (0, 0), (1, 1))) == 0
    assert request_response_vc(Message(PUTX, (0, 0), (1, 1))) == 0
    assert request_response_vc(Message(INV, (1, 1), (0, 0))) == 1
    assert request_response_vc(Message(ACK, (1, 1), (0, 0))) == 1


def test_message_labels_stable():
    m = Message(GETX, src=(0, 0), dst=(1, 1))
    assert m.label() == "getX[00->11]"
    assert m.with_vc(1).label() == "getX[00->11]@vc1"


def test_ether_network_is_queue_free():
    net = abstract_mi_ether(2, 2)
    assert not net.queues()
    assert len(net.automata()) == 4


def test_mesh_network_validates():
    inst = abstract_mi_mesh(2, 2, queue_size=1, vcs=2)
    inst.network.validate()
