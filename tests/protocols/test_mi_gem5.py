"""Tests for the full MI protocol (GEM5 MI_example-inspired)."""

import pytest

from repro.protocols import Message, mi_mesh
from repro.protocols.mi_gem5 import (
    DATA,
    FWD,
    GETX,
    PUTX,
    UNBLOCK,
    WBACK,
    WBNACK,
    mi_ether,
    mi_vc_assignment,
)


def test_layout_with_dma():
    inst = mi_mesh(2, 2, queue_size=2)
    assert inst.directory_node == (1, 1)
    assert inst.dma_node == (0, 0)
    assert inst.cache_nodes() == [(0, 1), (1, 0)]


def test_layout_without_dma():
    inst = mi_mesh(2, 2, queue_size=2, with_dma=False)
    assert inst.dma is None
    assert len(inst.caches) == 3


def test_cache_has_five_states():
    inst = mi_mesh(2, 2, queue_size=2)
    cache = inst.caches[(0, 1)]
    assert set(cache.states) == {"I", "IM", "M", "MI", "II"}


def test_directory_has_four_plus_n_states():
    inst = mi_mesh(3, 3, queue_size=2)
    n_caches = len(inst.caches)
    assert len(inst.directory.states) == 4 + n_caches
    assert {"I", "MB", "DR", "DW"} <= set(inst.directory.states)


def test_directory_without_dma_omits_dr_dw():
    inst = mi_mesh(2, 2, queue_size=2, with_dma=False)
    assert "DR" not in inst.directory.states
    assert "DW" not in inst.directory.states


def test_dma_states():
    inst = mi_mesh(2, 2, queue_size=2)
    assert set(inst.dma.states) == {"idle", "busy_rd", "busy_wr"}


def test_cache_to_cache_transfer_transitions():
    inst = mi_mesh(2, 2, queue_size=2)
    cache = inst.caches[(0, 1)]
    fwd = Message(FWD, src=(1, 0), dst=(0, 1))
    t = next(
        t for t in cache.transitions
        if t.origin == "M" and t.in_port == "net_in" and t.accepts(fwd)
    )
    # ownership transfers for a cache requestor
    assert t.target == "I"
    port, data = t.output(fwd)
    assert data.mtype == DATA
    assert data.dst == (1, 0)


def test_dma_fwd_does_not_transfer_ownership():
    inst = mi_mesh(2, 2, queue_size=2)
    cache = inst.caches[(0, 1)]
    dma_fwd = Message(FWD, src=inst.dma_node, dst=(0, 1))
    t = next(
        t for t in cache.transitions
        if t.origin == "M" and t.in_port == "net_in" and t.accepts(dma_fwd)
    )
    assert t.target == "M"


def test_wbnack_race_states():
    inst = mi_mesh(2, 2, queue_size=2)
    cache = inst.caches[(0, 1)]
    nack = Message(WBNACK, src=(1, 1), dst=(0, 1))
    from_mi = next(
        t for t in cache.transitions if t.origin == "MI" and t.accepts(nack)
    )
    assert from_mi.target == "II"
    from_ii = next(
        t for t in cache.transitions if t.origin == "II" and t.accepts(nack)
    )
    assert from_ii.target == "I"


def test_directory_nacks_stale_putx():
    inst = mi_mesh(2, 2, queue_size=2)
    putx = Message(PUTX, src=(0, 1), dst=(1, 1))
    nackers = [
        t for t in inst.directory.transitions
        if t.accepts(putx) and t.origin in ("MB", "M_1_0")
    ]
    assert nackers, "stale putx must be nacked in busy/foreign-owner states"
    for t in nackers:
        assert t.origin == t.target  # nack does not change directory state
        _, reply = t.output(putx)
        assert reply.mtype == WBNACK


def test_directory_dma_read_transitions():
    inst = mi_mesh(2, 2, queue_size=2)
    dma_getx = Message(GETX, src=inst.dma_node, dst=(1, 1))
    at_i = next(
        t for t in inst.directory.transitions
        if t.origin == "I" and t.accepts(dma_getx)
    )
    assert at_i.target == "DR"
    # while owned: forward, stay in M(c)
    at_m = next(
        t for t in inst.directory.transitions
        if t.origin == "M_0_1" and t.accepts(dma_getx)
    )
    assert at_m.target == "M_0_1"
    _, fwd = at_m.output(dma_getx)
    assert fwd.mtype == FWD and fwd.dst == (0, 1)


def test_dma_completions_distinct():
    inst = mi_mesh(2, 2, queue_size=2)
    dir_node = inst.directory_node
    dma = inst.dma
    dir_data = Message(DATA, src=dir_node, dst=inst.dma_node)
    owner_data = Message(DATA, src=(0, 1), dst=inst.dma_node)
    rd_done = next(
        t for t in dma.transitions if t.origin == "busy_rd" and t.accepts(dir_data)
    )
    assert rd_done.output(dir_data)[1].mtype == UNBLOCK
    silent = next(
        t for t in dma.transitions if t.origin == "busy_rd" and t.accepts(owner_data)
    )
    assert silent.output(owner_data) is None
    wback = Message(WBACK, src=dir_node, dst=inst.dma_node)
    wr_done = next(
        t for t in dma.transitions if t.origin == "busy_wr" and t.accepts(wback)
    )
    assert wr_done.output(wback)[1].mtype == DATA


def test_vc_assignment_splits_request_response():
    assert mi_vc_assignment(Message(GETX, (0, 0), (1, 1))) == 0
    assert mi_vc_assignment(Message(PUTX, (0, 0), (1, 1))) == 0
    for mtype in (FWD, DATA, UNBLOCK, WBACK, WBNACK):
        assert mi_vc_assignment(Message(mtype, (0, 0), (1, 1))) == 1


def test_ether_queue_free_and_validates():
    net = mi_ether(2, 2)
    assert not net.queues()
    net.validate()


def test_mesh_validates_with_vcs():
    inst = mi_mesh(2, 2, queue_size=1, vcs=2)
    inst.network.validate()


def test_needs_room_for_caches():
    with pytest.raises(ValueError):
        mi_mesh(2, 1, queue_size=1)  # dir + dma leave no cache nodes


def test_torus_and_ring_minimum_queue_size_is_six():
    """The full MI protocol keeps its mesh minimum (6) on the wraparound
    fabrics — the EXPERIMENTS.md topology × protocol table pins this."""
    from repro import Verdict, verify
    from repro.protocols import mi_ring, mi_torus

    for inst in (mi_torus(2, 2, queue_size=5), mi_ring(4, queue_size=5)):
        assert verify(inst.network).verdict is Verdict.DEADLOCK_CANDIDATE
    for inst in (mi_torus(2, 2, queue_size=6), mi_ring(4, queue_size=6)):
        assert verify(inst.network).verdict is Verdict.DEADLOCK_FREE
