"""Tests for the directory MSI protocol: automaton shape, virtual-network
assignment, topology parameterization, and verdict determinism across
scheduler job counts and invariant modes."""

import pytest

from repro import Verdict, verify
from repro.core import Experiment, ScenarioSpec
from repro.protocols import Message, msi_mesh, msi_ring, msi_torus
from repro.protocols.msi import (
    DATA,
    GETM,
    GETS,
    MSI_VNETS,
    PUTM,
    UNBLOCK,
    WBACK,
    msi_vc_assignment,
)

CACHE_STATES = {"I", "IS", "IM", "S", "SM", "M", "MI"}


# ---------------------------------------------------------------------------
# Shape
# ---------------------------------------------------------------------------
def test_instance_layout_default_directory():
    inst = msi_mesh(2, 2, queue_size=2)
    assert inst.directory_node == (1, 1)
    assert inst.cache_nodes() == [(0, 0), (0, 1), (1, 0)]


def test_cache_automaton_states():
    inst = msi_mesh(2, 2, queue_size=2)
    for cache in inst.caches.values():
        assert set(cache.states) == CACHE_STATES
        assert cache.initial == "I"


def test_directory_is_forward_explored():
    """Every directory state is reachable from I — the worklist generator
    guarantees it, and network validation relies on it."""
    inst = msi_mesh(2, 2, queue_size=2)
    directory = inst.directory
    assert directory.initial == "I"
    reachable = {directory.initial}
    frontier = [directory.initial]
    by_origin = {}
    for t in directory.transitions:
        by_origin.setdefault(t.origin, []).append(t.target)
    while frontier:
        state = frontier.pop()
        for target in by_origin.get(state, ()):
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    assert reachable == set(directory.states)


def test_sharer_capacity_bounds_recorded_sharers():
    """No reachable ``S_<tags>`` state records more than the sharer
    capacity — past it the directory recalls a sharer instead.  The
    owner-downgrade path (``getS`` at ``M``: fwdS keeps the old owner as a
    sharer alongside the requestor) always records two, so the effective
    bound is ``max(max_sharers, 2)``."""
    for cap in (1, 2, 3):
        inst = msi_mesh(2, 2, queue_size=2, max_sharers=cap)
        shared = [s for s in inst.directory.states if s.startswith("S_")]
        assert shared, f"max_sharers={cap} lost the S states"
        bound = max(cap, 2)
        assert all(len(s.split("_")) - 1 <= bound for s in shared), (cap, shared)


def test_vnet_assignment():
    assert MSI_VNETS == 3
    node, peer = (0, 0), (1, 1)
    assert msi_vc_assignment(Message(GETS, src=node, dst=peer)) == 0
    assert msi_vc_assignment(Message(GETM, src=node, dst=peer)) == 0
    assert msi_vc_assignment(Message(DATA, src=node, dst=peer)) == 1
    assert msi_vc_assignment(Message(UNBLOCK, src=node, dst=peer)) == 1
    assert msi_vc_assignment(Message(WBACK, src=node, dst=peer)) == 1
    assert msi_vc_assignment(Message(PUTM, src=node, dst=peer)) == 2


def test_topology_variants_build_and_validate():
    assert msi_torus(2, 2, queue_size=2).network.stats()["queues"] > 0
    assert msi_ring(4, queue_size=2).network.stats()["queues"] > 0


# ---------------------------------------------------------------------------
# Verdicts
# ---------------------------------------------------------------------------
def test_mesh_minimum_queue_size_is_four():
    assert (
        verify(msi_mesh(2, 2, queue_size=3).network).verdict
        is Verdict.DEADLOCK_CANDIDATE
    )
    assert (
        verify(msi_mesh(2, 2, queue_size=4).network).verdict
        is Verdict.DEADLOCK_FREE
    )


@pytest.mark.slow
def test_torus_and_ring_minima_match_mesh():
    assert (
        verify(msi_torus(2, 2, queue_size=4).network).verdict
        is Verdict.DEADLOCK_FREE
    )
    assert (
        verify(msi_ring(4, queue_size=4).network).verdict
        is Verdict.DEADLOCK_FREE
    )


def _msi_grid(invariants: str, portfolio: bool = False) -> Experiment:
    return Experiment(
        f"msi-identity-{invariants}" + ("-portfolio" if portfolio else ""),
        [
            ScenarioSpec(
                builder="msi_mesh",
                kwargs={"width": 2, "height": 2},
                mode="sweep",
                sizes=(3, 4),
                invariants=invariants,
                portfolio=portfolio,
            )
        ],
    )


def test_verdicts_identical_across_jobs_and_invariant_modes():
    """The acceptance bar: byte-identical verdicts whether the grid runs
    sequentially or sharded, with eager or partial invariants."""
    eager = _msi_grid("eager")
    sequential = eager.run(jobs=1)
    sharded = eager.run(jobs=2, backend="thread")
    assert sequential.verdict_bytes() == sharded.verdict_bytes()

    # Across invariant modes the scenario keys differ (the mode is part of
    # the spec), but every probe and minimum must agree.
    partial = _msi_grid("partial").run(jobs=1)
    assert [s.verdicts()[1:] for s in partial.scenarios] == [
        s.verdicts()[1:] for s in sequential.scenarios
    ]

    # The strategy portfolio races the same grid point; its canonical
    # verdicts are byte-identical (the flag is excluded from the key).
    raced = _msi_grid("eager", portfolio=True).run(jobs=1)
    assert raced.verdict_bytes() == sequential.verdict_bytes()
