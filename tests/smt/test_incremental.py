"""Incremental solving: assumptions, push/pop, cores, clause retention."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    FALSE,
    Result,
    Solver,
    boolvar,
    disj,
    eq,
    ge,
    intvar,
    le,
    neg,
)


# ---------------------------------------------------------------------------
# Assumptions
# ---------------------------------------------------------------------------


def test_assumptions_do_not_stick():
    x = intvar("ia_x")
    solver = Solver()
    solver.add(ge(x, 0))
    solver.add(le(x, 10))
    assert solver.check(assumptions=[ge(x, 11)]) == Result.UNSAT
    assert solver.check() == Result.SAT
    assert solver.check(assumptions=[eq(x, 7)]) == Result.SAT
    assert solver.model()[x] == 7
    assert solver.check(assumptions=[eq(x, 3)]) == Result.SAT
    assert solver.model()[x] == 3


def test_boolean_assumptions():
    a, b = boolvar("ia_a"), boolvar("ia_b")
    solver = Solver()
    solver.add(disj(a, b))
    assert solver.check(assumptions=[neg(a), neg(b)]) == Result.UNSAT
    assert solver.check(assumptions=[neg(a)]) == Result.SAT
    assert solver.model()[b] is True


def test_assumptions_guard_capacity_pattern():
    # The VerificationSession pattern: a guard implies an equality; probing
    # different sizes is just a different assumption literal.
    x = intvar("ia_cap")
    g2, g5 = boolvar("ia_g2"), boolvar("ia_g5")
    solver = Solver()
    solver.add(ge(x, 0))
    solver.add(neg(g2) | eq(x, 2))
    solver.add(neg(g5) | eq(x, 5))
    assert solver.check(assumptions=[g2]) == Result.SAT
    assert solver.model()[x] == 2
    assert solver.check(assumptions=[g5]) == Result.SAT
    assert solver.model()[x] == 5
    assert solver.check(assumptions=[g2, g5]) == Result.UNSAT


def test_contradictory_assumption_pair():
    a = boolvar("ia_pair")
    solver = Solver()
    solver.add(disj(a, neg(a)))  # mention the variable
    assert solver.check(assumptions=[a, neg(a)]) == Result.UNSAT
    core = solver.unsat_core()
    assert {t.uid for t in core} == {a.uid, neg(a).uid}


# ---------------------------------------------------------------------------
# Unsat cores
# ---------------------------------------------------------------------------


def test_unsat_core_subset_and_inconsistent():
    x, y = intvar("ic_x"), intvar("ic_y")
    solver = Solver()
    solver.add(ge(x, 0))
    solver.add(ge(y, 0))
    irrelevant = le(y, 50)
    culprit_a, culprit_b = le(x, 3), ge(x, 4)
    assert solver.check(assumptions=[irrelevant, culprit_a, culprit_b]) == Result.UNSAT
    core = solver.unsat_core()
    core_uids = {t.uid for t in core}
    assert culprit_a.uid in core_uids
    assert culprit_b.uid in core_uids
    assert irrelevant.uid not in core_uids
    # The core alone must still be inconsistent on a fresh solver.
    fresh = Solver()
    fresh.add(ge(x, 0))
    fresh.add(ge(y, 0))
    for term in core:
        fresh.add(term)
    assert fresh.check() == Result.UNSAT


def test_unsat_core_empty_when_formula_unsat():
    x = intvar("ic_z")
    solver = Solver()
    solver.add(ge(x, 1))
    solver.add(le(x, 0))
    assert solver.check(assumptions=[le(x, 100)]) == Result.UNSAT
    assert solver.unsat_core() == []


def test_unsat_core_requires_unsat():
    solver = Solver()
    solver.add(boolvar("ic_sat"))
    assert solver.check() == Result.SAT
    with pytest.raises(RuntimeError):
        solver.unsat_core()


# ---------------------------------------------------------------------------
# Push / pop
# ---------------------------------------------------------------------------


def test_push_pop_retracts():
    x = intvar("ip_x")
    solver = Solver()
    solver.add(ge(x, 0))
    solver.add(le(x, 10))
    solver.push()
    solver.add(ge(x, 11))
    assert solver.check() == Result.UNSAT
    solver.pop()
    assert solver.check() == Result.SAT
    solver.push()
    solver.add(eq(x, 4))
    assert solver.check() == Result.SAT
    assert solver.model()[x] == 4
    solver.pop()


def test_nested_scopes():
    a, b = boolvar("ip_a"), boolvar("ip_b")
    solver = Solver()
    solver.add(disj(a, b))
    solver.push()
    solver.add(neg(a))
    solver.push()
    solver.add(neg(b))
    assert solver.check() == Result.UNSAT
    solver.pop()
    assert solver.check() == Result.SAT
    assert solver.model()[b] is True
    solver.pop()
    assert solver.check(assumptions=[a]) == Result.SAT


def test_scoped_false_is_retractable():
    solver = Solver()
    solver.add(boolvar("ip_alive"))
    solver.push()
    solver.add(FALSE)
    assert solver.check() == Result.UNSAT
    solver.pop()
    assert solver.check() == Result.SAT


def test_pop_without_push():
    with pytest.raises(RuntimeError):
        Solver().pop()


def test_targeted_scope_pop_and_add():
    # Scopes are independent selectors: a token from push() lets a caller
    # retire or extend its *own* scope even after others opened on top.
    a = boolvar("ts_a")
    solver = Solver()
    solver.add(disj(a, neg(a)))
    outer = solver.push()
    solver.add(neg(a), scope=outer)
    inner = solver.push()
    solver.add(a, scope=inner)
    assert solver.check() == Result.UNSAT
    solver.pop(outer)  # retire the *outer* scope while inner stays open
    assert solver.check() == Result.SAT
    assert solver.model()[a] is True
    solver.pop(inner)
    with pytest.raises(RuntimeError):
        solver.pop(inner)  # already closed
    with pytest.raises(RuntimeError):
        solver.add(a, scope=inner)  # cannot add to a closed scope


# ---------------------------------------------------------------------------
# Learned-clause retention
# ---------------------------------------------------------------------------


def test_learned_clauses_survive_checks():
    # Pigeonhole 4-into-3 forces real conflict-driven learning.
    holes = 3
    pigeons = [[boolvar(f"ph_{p}_{h}") for h in range(holes)] for p in range(4)]
    solver = Solver()
    for row in pigeons:
        solver.add(disj(*row))
    for h in range(holes):
        for p1 in range(4):
            for p2 in range(p1 + 1, 4):
                solver.add(disj(neg(pigeons[p1][h]), neg(pigeons[p2][h])))
    clauses_before = solver.clause_count()
    assert solver.check() == Result.UNSAT
    assert solver.stats["conflicts"] > 0
    assert solver.clause_count() > clauses_before, "learned clauses retained"
    first_conflicts = solver.stats["conflicts"]
    # The same (unconditionally unsat) query again: the solver is already
    # root-level inconsistent, so no new search is needed at all.
    assert solver.check() == Result.UNSAT
    assert solver.stats["conflicts"] <= first_conflicts


def test_learned_clauses_reused_across_assumption_flips():
    # Under assumptions the instance stays satisfiable globally, so learned
    # clauses must carry over without poisoning later queries.
    n = 6
    xs = [intvar(f"lr_{i}") for i in range(n)]
    solver = Solver()
    for x in xs:
        solver.add(ge(x, 0))
        solver.add(le(x, 3))
    solver.add(eq(sum(xs[1:], xs[0] + 0), 9))
    total_first = None
    for lo in (0, 1, 2):
        verdict = solver.check(assumptions=[ge(xs[0], lo)])
        assert verdict == Result.SAT
        if total_first is None:
            total_first = solver.clause_count()
    assert solver.check(assumptions=[ge(xs[0], 4)]) == Result.UNSAT
    assert solver.check(assumptions=[eq(xs[0], 3)]) == Result.SAT
    assert solver.model()[xs[0]] == 3
    # Splits/learned clauses from earlier queries are still in the store.
    assert solver.clause_count() >= total_first


# ---------------------------------------------------------------------------
# Model strictness (satellite: no silent defaults)
# ---------------------------------------------------------------------------


def test_model_raises_on_unknown_int_var():
    x, ghost = intvar("im_x"), intvar("im_ghost")
    solver = Solver()
    solver.add(eq(x, 1))
    assert solver.check() == Result.SAT
    assert solver.model()[x] == 1
    with pytest.raises(KeyError):
        solver.model()[ghost]
    assert ghost not in solver.model()


def test_model_raises_on_unknown_bool():
    a = boolvar("im_a")
    solver = Solver()
    solver.add(a)
    assert solver.check() == Result.SAT
    assert solver.model()[a] is True
    with pytest.raises(KeyError):
        solver.model()["im_never_mentioned"]
    with pytest.raises(KeyError):
        solver.model()[boolvar("im_other")]


# ---------------------------------------------------------------------------
# Differential property test: incremental == from-scratch
# ---------------------------------------------------------------------------

N_VARS = 3
DOMAIN = range(0, 4)

atom_specs = st.tuples(
    st.tuples(*[st.integers(min_value=-2, max_value=2) for _ in range(N_VARS)]),
    st.integers(min_value=-4, max_value=8),
    st.sampled_from(["le", "ge", "eq"]),
)


def _build_atom(variables, spec):
    coeffs, bound, kind = spec
    expr = sum((c * v for c, v in zip(coeffs, variables)), 0 * variables[0])
    if kind == "le":
        return le(expr, bound)
    if kind == "ge":
        return ge(expr, bound)
    return eq(expr, bound)


@given(
    base=st.lists(atom_specs, min_size=1, max_size=3),
    queries=st.lists(st.lists(atom_specs, min_size=0, max_size=2), min_size=1, max_size=4),
)
@settings(max_examples=60, deadline=None)
def test_assumption_checks_match_fresh_solver(base, queries):
    """One incremental solver answering many queries must agree with a
    fresh solver built per query (any order, any assumption sets)."""
    variables = [intvar(f"pd_{i}") for i in range(N_VARS)]
    bounds = []
    for var in variables:
        bounds.append(ge(var, min(DOMAIN)))
        bounds.append(le(var, max(DOMAIN)))
    base_atoms = [_build_atom(variables, spec) for spec in base]

    incremental = Solver()
    for term in bounds + base_atoms:
        incremental.add(term)

    for query in queries:
        assumption_atoms = [_build_atom(variables, spec) for spec in query]
        verdict = incremental.check(assumptions=assumption_atoms)

        fresh = Solver()
        for term in bounds + base_atoms + assumption_atoms:
            fresh.add(term)
        assert verdict == fresh.check()
        if verdict == Result.SAT:
            model = incremental.model()
            values = {v: model[v] for v in variables}
            for atom in base_atoms + assumption_atoms:
                # every asserted/assumed conjunct holds in the model
                assert _holds(atom, values)


@given(
    scoped=st.lists(st.lists(atom_specs, min_size=1, max_size=2), min_size=1, max_size=3),
)
@settings(max_examples=40, deadline=None)
def test_push_pop_matches_fresh_solver(scoped):
    """After arbitrary push/add/check/pop cycles, the base formula must
    answer exactly as a fresh solver on the base formula."""
    variables = [intvar(f"pp_{i}") for i in range(N_VARS)]
    base = []
    for var in variables:
        base.append(ge(var, min(DOMAIN)))
        base.append(le(var, max(DOMAIN)))

    incremental = Solver()
    for term in base:
        incremental.add(term)

    for group in scoped:
        atoms = [_build_atom(variables, spec) for spec in group]
        incremental.push()
        for atom in atoms:
            incremental.add(atom)
        verdict = incremental.check()
        fresh = Solver()
        for term in base + atoms:
            fresh.add(term)
        assert verdict == fresh.check()
        incremental.pop()

    assert incremental.check() == Result.SAT  # plain bounds are satisfiable


def _holds(term, values):
    """Evaluate an atom/conjunction produced by ``_build_atom``."""
    from repro.smt import And, Atom, Not

    if isinstance(term, Atom):
        return term.constraint.evaluate(values)
    if isinstance(term, And):
        return all(_holds(arg, values) for arg in term.args)
    if isinstance(term, Not):
        return not _holds(term.arg, values)
    if term.__class__.__name__ == "BoolConst":
        return term.value
    raise TypeError(f"unexpected term {term!r}")
