"""Learned-clause lifecycle: reduction must never change an answer.

Clause-database reduction deletes only *redundant* clauses (resolvents of
the database), so every verdict — SAT/UNSAT, under any assumption order —
must be byte-identical with reduction on or off, even with pathologically
aggressive schedules that reduce after nearly every conflict.  The
hypothesis differential drives random guarded-arithmetic instances
through random op orders to keep that promise honest; directed tests pin
the policy details (glue protection, the cap, export/import, compaction,
and the early-UNSAT stat contract for the new counters).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import FALSE, Result, Solver, boolvar, eq, ge, implies, intvar, le
from repro.smt.sat import SAT, UNSAT, Cdcl

# ---------------------------------------------------------------------------
# Random instances: base constraints + guard-implied constraints, queried
# under random assumption subsets — the op shape the engine generates.
# ---------------------------------------------------------------------------

N_VARS = 3
N_GUARDS = 4

coeffs = st.lists(
    st.integers(min_value=-3, max_value=3), min_size=N_VARS, max_size=N_VARS
)
atom = st.tuples(coeffs, st.integers(min_value=-6, max_value=6))
instance = st.tuples(
    st.lists(atom, min_size=1, max_size=4),
    st.lists(atom, min_size=N_GUARDS, max_size=N_GUARDS),
    st.lists(
        st.lists(
            st.integers(min_value=0, max_value=N_GUARDS - 1),
            min_size=0,
            max_size=N_GUARDS,
            unique=True,
        ),
        min_size=1,
        max_size=4,
    ),
)


def _build(base, guarded, **solver_kwargs):
    xs = [intvar(f"rx{i}") for i in range(N_VARS)]
    solver = Solver(**solver_kwargs)
    for x in xs:
        solver.add(ge(x, 0))
        solver.add(le(x, 4))
    for cs, bound in base:
        solver.add(le(sum(c * x for c, x in zip(cs, xs)), bound))
    guards = [boolvar(f"rg{i}") for i in range(N_GUARDS)]
    for guard, (cs, bound) in zip(guards, guarded):
        solver.add(implies(guard, le(sum(c * x for c, x in zip(cs, xs)), bound)))
    return solver, guards


@given(data=instance)
@settings(max_examples=60, deadline=None)
def test_reduction_on_off_verdicts_byte_identical(data):
    base, guarded, queries = data
    # Pathological schedule: reduce at every opportunity.
    reduced, guards = _build(
        base, guarded, clause_reduction=True, reduce_base=1,
        reduce_growth=1.0, glue_cap=2, reduce_keep=0.0,
    )
    plain, _ = _build(base, guarded, clause_reduction=False)
    seen = []
    for indices in queries:
        assumptions = [guards[i] for i in indices]
        a = reduced.check(assumptions=assumptions)
        b = plain.check(assumptions=assumptions)
        seen.append((a.value, b.value))
    payload_a = json.dumps([a for a, _ in seen]).encode()
    payload_b = json.dumps([b for _, b in seen]).encode()
    assert payload_a == payload_b


@given(data=instance)
@settings(max_examples=30, deadline=None)
def test_import_learned_never_flips_a_verdict(data):
    """Warm restore (snapshot + learned import) ≡ cold restore."""
    base, guarded, queries = data
    teacher, guards = _build(base, guarded)
    cold_snapshot = teacher.snapshot()  # before any learning
    for indices in queries:  # accumulate learned state
        teacher.check(assumptions=[guards[i] for i in indices])
    warm = Solver.from_snapshot(teacher.snapshot(include_learned=True))
    cold = Solver.from_snapshot(cold_snapshot)
    for indices in queries:
        names = [boolvar(f"rg{i}") for i in indices]
        assert warm.check(assumptions=names) == cold.check(assumptions=names)


# ---------------------------------------------------------------------------
# Directed policy checks on the bare CDCL core
# ---------------------------------------------------------------------------


def _hard_instance(solver: Cdcl, pigeons=7, holes=6) -> None:
    def var(p, h):
        return (p - 1) * holes + h

    solver.ensure_vars(pigeons * holes)
    for p in range(1, pigeons + 1):
        solver.add_clause([var(p, h) for h in range(1, holes + 1)])
    for h in range(1, holes + 1):
        for p1 in range(1, pigeons + 1):
            for p2 in range(p1 + 1, pigeons + 1):
                solver.add_clause([-var(p1, h), -var(p2, h)])


def test_reduction_bounds_the_database_on_conflict_heavy_instances():
    bounded = Cdcl(reduction=True, reduce_base=30, reduce_growth=1.3)
    unbounded = Cdcl(reduction=False)
    _hard_instance(bounded)
    _hard_instance(unbounded)
    assert bounded.solve() == unbounded.solve() == UNSAT
    assert bounded.stats["reductions"] > 0
    assert bounded.stats["reduced"] > 0
    assert bounded.learned_count < unbounded.learned_count


def test_problem_clauses_are_never_deleted():
    solver = Cdcl(reduction=True, reduce_base=1, reduce_keep=0.0, glue_cap=0)
    _hard_instance(solver, pigeons=5, holes=4)
    problem_clauses = len(solver.clauses)
    assert solver.solve() == UNSAT
    solver.compact()
    kept_problem = sum(1 for lbd in solver._lbd if lbd == 0)
    assert kept_problem == problem_clauses


def _seeded_3sat(solver: Cdcl, n=30, m=126, seed=7) -> None:
    """A conflict-heavy satisfiable-or-not random 3-SAT instance."""
    import random

    rng = random.Random(seed)
    solver.ensure_vars(n)
    for _ in range(m):
        lits = rng.sample(range(1, n + 1), 3)
        solver.add_clause([lit if rng.random() < 0.5 else -lit for lit in lits])


def test_glue_cap_demotes_coldest_protected_clauses():
    solver = Cdcl(reduction=False, glue_cap=5, reduce_keep=0.0)
    _seeded_3sat(solver)
    verdict = solver.solve()
    before = solver.learned_count
    assert before > 5, "seeded instance should be conflict-heavy"
    solver.compact()
    # Everything beyond the protected cap was deletable (keep fraction 0).
    assert solver.learned_count <= 5
    assert solver.stats["kept_glue"] <= 5
    # Deleting redundant clauses cannot flip the verdict.
    assert solver.solve() == verdict


def test_compact_is_sound_mid_incremental_use():
    solver = Cdcl(reduction=False)
    _hard_instance(solver, pigeons=5, holes=4)
    assert solver.solve() == UNSAT  # root-level UNSAT marks _ok False
    assert solver.compact() == 0

    sat_solver = Cdcl(reduction=False)
    sat_solver.ensure_vars(3)
    sat_solver.add_clause([1, 2])
    sat_solver.add_clause([-1, 3])
    assert sat_solver.solve() == SAT
    sat_solver.compact()
    assert sat_solver.solve() == SAT
    sat_solver.add_clause([-3])  # forces -1, then 2 at the root
    sat_solver.compact()
    assert sat_solver.solve(assumptions=[1]) == UNSAT
    assert sat_solver.final_core == [1]
    assert sat_solver.solve() == SAT  # formula itself stays satisfiable


def test_learned_export_is_lbd_sorted_and_capped():
    solver = Cdcl(reduction=False)
    _hard_instance(solver)
    solver.solve()
    export = solver.learned_clauses()
    lbds = [lbd for lbd, lits in export if len(lits) > 1]
    assert lbds == sorted(lbds)
    capped = solver.learned_clauses(cap=5)
    assert len(capped) == 5 and list(capped) == list(export[:5])
    for lbd, lits in solver.learned_clauses(max_lbd=2):
        assert lbd <= 2 or len(lits) == 1


def test_import_demotion_floors_lbd_below_glue_protection():
    teacher = Cdcl(reduction=False)
    _hard_instance(teacher)
    teacher.solve()
    export = [
        (lbd, lits) for lbd, lits in teacher.learned_clauses()
        if len(lits) > 2
    ]
    assert export, "instance should learn some non-binary clauses"
    student = Cdcl(reduction=False, glue_keep=2)
    _hard_instance(student)
    student.import_learned(export, demote_to=3)
    imported_lbds = [lbd for lbd in student._lbd if lbd]
    assert imported_lbds and all(lbd >= 3 for lbd in imported_lbds)


def test_phase_vector_roundtrip_steers_first_model():
    a = Cdcl()
    a.ensure_vars(4)
    a.add_clause([1, 2, 3, 4])
    for var, phase in ((1, True), (2, False), (3, True), (4, False)):
        a.set_phase(var, phase)
    b = Cdcl()
    b.ensure_vars(4)
    b.add_clause([1, 2, 3, 4])
    b.seed_phases(a.phase_vector())
    assert b.solve() == SAT
    assert b.model_value(1) is True  # first decision follows the seed


# ---------------------------------------------------------------------------
# Stat-key contract (satellite): the lifecycle counters are stable keys
# and zero correctly on the early-UNSAT path.
# ---------------------------------------------------------------------------

LIFECYCLE_KEYS = {"learned", "reductions", "reduced", "kept_glue"}


def test_cdcl_stats_carry_stable_lifecycle_keys():
    assert LIFECYCLE_KEYS <= set(Cdcl().stats)


def test_early_unsat_zeroes_lifecycle_keys_too():
    solver = Solver()
    solver.add(ge(intvar("lc_x"), 0))
    assert solver.check() == Result.SAT  # learn-capable query first
    solver.add(FALSE)
    assert solver.check(assumptions=[boolvar("lc_g")]) == Result.UNSAT
    assert LIFECYCLE_KEYS <= set(solver.stats)
    assert all(solver.stats[key] == 0 for key in LIFECYCLE_KEYS)
    assert solver.formula_unsat


def test_solver_stats_report_lifecycle_deltas_per_query():
    x = intvar("ld_x")
    solver = Solver()
    solver.add(ge(x, 0))
    solver.add(le(x, 8))
    g = boolvar("ld_g")
    solver.add(implies(g, eq(x, 9)))
    assert solver.check(assumptions=[g]) == Result.UNSAT
    first_learned = solver.stats["learned"]
    assert solver.check() == Result.SAT
    # Deltas, not cumulative totals: a cheap follow-up query reports only
    # its own learning.
    assert solver.stats["learned"] <= first_learned or first_learned == 0
    assert LIFECYCLE_KEYS <= set(solver.stats)
