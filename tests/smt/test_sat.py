"""Unit tests for the CDCL SAT core (no theory attached)."""

import pytest

from repro.smt.sat import SAT, UNSAT, BudgetExceeded, Cdcl, _luby


def solve_clauses(n_vars, clauses):
    solver = Cdcl()
    solver.ensure_vars(n_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver


def test_luby_prefix():
    assert [_luby(i) for i in range(1, 16)] == [
        1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
    ]


def test_empty_problem_is_sat():
    solver = solve_clauses(0, [])
    assert solver.solve() == SAT


def test_single_unit():
    solver = solve_clauses(1, [[1]])
    assert solver.solve() == SAT
    assert solver.model_value(1) is True


def test_contradicting_units():
    solver = solve_clauses(1, [[1], [-1]])
    assert solver.solve() == UNSAT


def test_simple_implication_chain():
    # 1 -> 2 -> 3, with 1 forced.
    solver = solve_clauses(3, [[1], [-1, 2], [-2, 3]])
    assert solver.solve() == SAT
    assert solver.model_value(3) is True


def test_unsat_triangle():
    clauses = [[1, 2], [-1, 2], [1, -2], [-1, -2]]
    solver = solve_clauses(2, clauses)
    assert solver.solve() == UNSAT


def test_tautological_clause_ignored():
    solver = solve_clauses(2, [[1, -1], [2]])
    assert solver.solve() == SAT
    assert solver.model_value(2) is True


def test_duplicate_literals_deduped():
    solver = solve_clauses(1, [[1, 1, 1]])
    assert solver.solve() == SAT
    assert solver.model_value(1) is True


def test_pigeonhole_2_into_1_unsat():
    # Two pigeons, one hole: p1h1, p2h1, not both.
    clauses = [[1], [2], [-1, -2]]
    solver = solve_clauses(2, clauses)
    assert solver.solve() == UNSAT


def test_pigeonhole_3_into_2_unsat():
    # var(p,h) = 2*(p-1)+h for p in 1..3, h in 1..2
    def var(p, h):
        return 2 * (p - 1) + h

    clauses = []
    for p in range(1, 4):
        clauses.append([var(p, 1), var(p, 2)])
    for h in (1, 2):
        for p1 in range(1, 4):
            for p2 in range(p1 + 1, 4):
                clauses.append([-var(p1, h), -var(p2, h)])
    solver = solve_clauses(6, clauses)
    assert solver.solve() == UNSAT


def test_model_satisfies_all_clauses():
    clauses = [[1, 2, 3], [-1, -2], [-2, -3], [-1, -3], [2, 3]]
    solver = solve_clauses(3, clauses)
    assert solver.solve() == SAT
    model = {v: solver.model_value(v) for v in (1, 2, 3)}
    for clause in clauses:
        assert any(model[abs(lit)] == (lit > 0) for lit in clause)


def test_incremental_clause_addition():
    solver = solve_clauses(2, [[1, 2]])
    assert solver.solve() == SAT
    solver.add_clause([-1])
    assert solver.solve() == SAT
    assert solver.model_value(2) is True
    solver.add_clause([-2])
    assert solver.solve() == UNSAT


def test_budget_exceeded():
    # A hard-ish random-like instance would take >0 conflicts; force budget 0.
    def var(p, h):
        return 3 * (p - 1) + h

    clauses = []
    for p in range(1, 5):
        clauses.append([var(p, 1), var(p, 2), var(p, 3)])
    for h in (1, 2, 3):
        for p1 in range(1, 5):
            for p2 in range(p1 + 1, 5):
                clauses.append([-var(p1, h), -var(p2, h)])
    solver = solve_clauses(12, clauses)
    with pytest.raises(BudgetExceeded):
        solver.solve(max_conflicts=1)


def test_stats_populated():
    solver = solve_clauses(2, [[1, 2], [-1, 2], [1, -2], [-1, -2]])
    solver.solve()
    assert solver.stats["conflicts"] >= 1
