"""Differential testing of the CDCL core against brute-force enumeration."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt.sat import SAT, UNSAT, Cdcl

N_VARS = 5

literals = st.integers(min_value=1, max_value=N_VARS).flatmap(
    lambda v: st.sampled_from([v, -v])
)
clauses_strategy = st.lists(
    st.lists(literals, min_size=1, max_size=4), min_size=0, max_size=12
)


def brute_force_sat(clauses):
    for bits in product([False, True], repeat=N_VARS):
        assignment = {v: bits[v - 1] for v in range(1, N_VARS + 1)}
        if all(any(assignment[abs(lit)] == (lit > 0) for lit in c) for c in clauses):
            return True
    return False


@given(clauses_strategy)
@settings(max_examples=300, deadline=None)
def test_cdcl_matches_truth_table(clauses):
    solver = Cdcl()
    solver.ensure_vars(N_VARS)
    for clause in clauses:
        solver.add_clause(clause)
    verdict = solver.solve()
    expected = brute_force_sat(clauses)
    assert verdict == (SAT if expected else UNSAT)
    if verdict == SAT:
        model = {v: solver.model_value(v) for v in range(1, N_VARS + 1)}
        for clause in clauses:
            assert any(model[abs(lit)] == (lit > 0) for lit in clause)


@given(clauses_strategy, clauses_strategy)
@settings(max_examples=100, deadline=None)
def test_incremental_matches_monolithic(first, second):
    incremental = Cdcl()
    incremental.ensure_vars(N_VARS)
    for clause in first:
        incremental.add_clause(clause)
    incremental.solve()
    for clause in second:
        incremental.add_clause(clause)
    verdict = incremental.solve()

    monolithic = Cdcl()
    monolithic.ensure_vars(N_VARS)
    for clause in first + second:
        monolithic.add_clause(clause)
    assert verdict == monolithic.solve()
