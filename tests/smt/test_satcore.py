"""Differential tests: flat-arena CDCL core vs the frozen reference core.

The arena rewrite (:mod:`repro.smt.sat`) promises a byte-for-byte frozen
behavioural contract against the pre-arena core it replaced, kept in
:mod:`repro.smt._sat_reference`.  These tests enforce that promise:

* random CNFs (with random reduction knobs and assumption sets) must
  produce identical verdicts, models, failed-assumption cores and search
  ``stats`` on both cores — identical *trajectories*, not just identical
  answers;
* the learned export must carry the same clauses (compared as multisets
  of ``(lbd, sorted literals)`` — slot order inside a clause is the one
  representational freedom the arena keeps);
* warm session snapshots must round-trip through a real ``spawn`` worker
  (the strictest start method), with ``SNAPSHOT_VERSION`` still 2 since
  the export format did not change;
* the satellite regressions: ``_decide`` may never fall back to a
  full-array scan, and the ``profile()`` counters must be zeroed on the
  early-UNSAT path exactly like ``stats``.
"""

from __future__ import annotations

import inspect
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import get_context

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VerificationSession
from repro.core.parallel import WorkerSession, _initialize_worker, _run_job
from repro.netlib import running_example
from repro.smt import _sat_reference, sat
from repro.smt import serialize
from repro.smt.solver import Result, Solver
from repro.smt.terms import boolvar

N_VARS = 8

literals = st.integers(min_value=1, max_value=N_VARS).flatmap(
    lambda v: st.sampled_from([v, -v])
)
clauses_strategy = st.lists(
    st.lists(literals, min_size=1, max_size=4), min_size=0, max_size=20
)
assumptions_strategy = st.lists(literals, min_size=0, max_size=4)
# Exercise the reduce_db path (tiny reduce_base forces early reductions)
# and the reduction-free arena as well as the defaults.
knobs_strategy = st.sampled_from(
    [
        {},
        {"reduction": False},
        {"reduce_base": 2, "reduce_growth": 1.0, "glue_cap": 3},
        {"reduce_base": 4, "reduce_keep": 0.25},
    ]
)


def _pair(knobs):
    return sat.Cdcl(**knobs), _sat_reference.Cdcl(**knobs)


def _export_multiset(core):
    return sorted(
        (lbd, tuple(sorted(lits)))
        for lbd, lits in core.learned_clauses()
    )


def _assert_in_lockstep(arena, reference, verdict_a, verdict_r):
    assert verdict_a == verdict_r
    assert arena.stats == reference.stats, "search trajectories diverged"
    if verdict_a == sat.SAT:
        model_a = [arena.model_value(v) for v in range(1, N_VARS + 1)]
        model_r = [reference.model_value(v) for v in range(1, N_VARS + 1)]
        assert model_a == model_r
    if verdict_a == sat.UNSAT:
        assert arena.final_core == reference.final_core
    assert _export_multiset(arena) == _export_multiset(reference)


@given(clauses_strategy, assumptions_strategy, knobs_strategy)
@settings(max_examples=200, deadline=None)
def test_arena_matches_reference_single_solve(clauses, assumptions, knobs):
    arena, reference = _pair(knobs)
    arena.ensure_vars(N_VARS)
    reference.ensure_vars(N_VARS)
    for clause in clauses:
        arena.add_clause(clause)
        reference.add_clause(clause)
    _assert_in_lockstep(
        arena,
        reference,
        arena.solve(assumptions=assumptions),
        reference.solve(assumptions=assumptions),
    )


@given(
    clauses_strategy, clauses_strategy, assumptions_strategy, knobs_strategy
)
@settings(max_examples=150, deadline=None)
def test_arena_matches_reference_incremental(
    first, second, assumptions, knobs
):
    """Two solve rounds with clause additions in between stay in lockstep."""
    arena, reference = _pair(knobs)
    arena.ensure_vars(N_VARS)
    reference.ensure_vars(N_VARS)
    for clause in first:
        arena.add_clause(clause)
        reference.add_clause(clause)
    assert arena.solve() == reference.solve()
    for clause in second:
        arena.add_clause(clause)
        reference.add_clause(clause)
    _assert_in_lockstep(
        arena,
        reference,
        arena.solve(assumptions=assumptions),
        reference.solve(assumptions=assumptions),
    )


# ---------------------------------------------------------------------------
# Satellite: no fallback scan in _decide
# ---------------------------------------------------------------------------


def test_decide_has_no_fallback_scan():
    """Repeated solve() calls keep the heap invariant that makes the
    scan-free ``_decide`` correct: every unassigned variable always has a
    heap entry carrying its *current* activity."""
    core = sat.Cdcl()
    core.ensure_vars(N_VARS)
    for clause in [[1, 2], [-1, 3], [-2, -3], [4, 5, 6], [-4, -5], [7, -8]]:
        core.add_clause(clause)
    for assumptions in ([], [1], [-3, 7], [2, -6], []):
        assert core.solve(assumptions=assumptions) == sat.SAT
        entries = set(core._heap)
        for var in range(1, N_VARS + 1):
            if core._val[var << 1] == 0:
                assert (-core._activity[var], var) in entries, (
                    f"unassigned var {var} lost its current-key heap entry"
                )
    # The old core walked every variable when the heap ran dry; the arena
    # core's invariant makes that path dead, and it must stay deleted.
    source = inspect.getsource(sat.Cdcl._decide)
    assert "n_vars" not in source, "_decide regained a full-array scan"


# ---------------------------------------------------------------------------
# Satellite: profile() zeroed on the early-UNSAT path
# ---------------------------------------------------------------------------


def test_profile_zeroed_on_early_unsat():
    solver = Solver()
    x = boolvar("x")
    solver.add(x)
    assert solver.check() == Result.SAT
    assert solver.profile["propagations"] >= 0
    solver.add(~x)
    assert solver.check() == Result.UNSAT
    # Permanently UNSAT now: the next check takes the early-UNSAT path
    # and must report a zero *delta*, not a stale one (the same contract
    # bug class PR 2/PR 3 fixed for ``stats``).
    assert solver.check() == Result.UNSAT
    assert set(solver.profile) == {
        "propagations",
        "visited_watchers",
        "blocker_hits",
        "analyze_steps",
        "arena_gc_words",
    }
    assert all(value == 0 for value in solver.profile.values())
    assert all(value == 0 for value in solver.stats.values())


def test_cdcl_profile_counts_propagations_consistently():
    core = sat.Cdcl()
    core.ensure_vars(3)
    for clause in [[1, 2], [-1, 2], [-2, 3]]:
        core.add_clause(clause)
    assert core.solve() == sat.SAT
    profile = core.profile()
    assert profile["propagations"] == core.stats["propagations"]
    assert profile["visited_watchers"] >= profile["blocker_hits"]


# ---------------------------------------------------------------------------
# Satellite: warm snapshots round-trip through real spawn workers
# ---------------------------------------------------------------------------


def test_snapshot_version_unchanged():
    # The arena is an internal representation; the learned export is the
    # same (lbd, literals) tuples, so snapshots need no version bump.
    assert serialize.SNAPSHOT_VERSION == 2


def test_warm_snapshot_round_trips_under_spawn():
    session = VerificationSession(
        running_example(queue_size=2).network, parametric_queues=True
    )
    session.verify()
    snapshot = session.snapshot(include_learned=True)
    assert snapshot.solver.learned, "warm snapshot shipped no learned clauses"
    job = ("check", None, None, False)
    with ProcessPoolExecutor(
        max_workers=1,
        mp_context=get_context("spawn"),
        initializer=_initialize_worker,
        initargs=(snapshot,),
    ) as executor:
        remote = executor.submit(_run_job, job).result(timeout=180)
    local = WorkerSession(snapshot).run(job)
    assert remote[0] == local[0]
    if remote[0] == "unsat":
        assert set(remote[1]) == set(local[1])
