"""Solver snapshots: round-trip fidelity, forking, early-UNSAT contract.

The serialization layer promises that a restored solver answers every
query over snapshot state *identically* — same verdicts, same unsat-core
names — when queries arrive as named boolean guards (the only way worker
processes talk to snapshot state).  The properties here drive random
formula + assumption mixes through snapshot/restore and pickle to keep
that promise honest.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import (
    FALSE,
    Result,
    Solver,
    boolvar,
    eq,
    ge,
    implies,
    intvar,
    le,
    restore_solver,
)

# ---------------------------------------------------------------------------
# Random guarded-arithmetic instances (the shape the engine generates:
# base constraints + guard literals implying extra constraints).
# ---------------------------------------------------------------------------

N_VARS = 3
N_GUARDS = 4

coeffs = st.lists(
    st.integers(min_value=-3, max_value=3), min_size=N_VARS, max_size=N_VARS
)
atom = st.tuples(coeffs, st.integers(min_value=-6, max_value=6))
instance = st.tuples(
    st.lists(atom, min_size=1, max_size=4),  # base constraints
    st.lists(atom, min_size=N_GUARDS, max_size=N_GUARDS),  # guarded
    st.lists(  # assumption sets to query, in order
        st.lists(
            st.integers(min_value=0, max_value=N_GUARDS - 1),
            min_size=0,
            max_size=N_GUARDS,
            unique=True,
        ),
        min_size=1,
        max_size=3,
    ),
)


def _build(base, guarded):
    """One solver (and its vars/guards) over a random instance."""
    xs = [intvar(f"sx{i}") for i in range(N_VARS)]
    solver = Solver()
    for x in xs:
        solver.add(ge(x, 0))
        solver.add(le(x, 4))
    for cs, bound in base:
        solver.add(le(sum(c * x for c, x in zip(cs, xs)), bound))
    guards = [boolvar(f"sg{i}") for i in range(N_GUARDS)]
    for guard, (cs, bound) in zip(guards, guarded):
        solver.add(implies(guard, le(sum(c * x for c, x in zip(cs, xs)), bound)))
    return solver, guards


@given(data=instance)
@settings(max_examples=60, deadline=None)
def test_snapshot_roundtrip_preserves_verdicts_and_cores(data):
    base, guarded, queries = data
    original, guards = _build(base, guarded)
    # Snapshot before any query; ship through pickle like a spawn worker.
    snapshot = pickle.loads(pickle.dumps(original.snapshot()))
    restored, _ = restore_solver(snapshot)
    for indices in queries:
        assumptions = [guards[i] for i in indices]
        expected = original.check(assumptions=assumptions)
        got = restored.check(
            assumptions=[boolvar(f"sg{i}") for i in indices]
        )
        assert got == expected
        if expected == Result.UNSAT:
            # Cores are solver-trajectory-dependent sets, but both solvers
            # see identical clause databases and assumption orders, so the
            # failed-assumption names must agree.
            assert [t.name for t in restored.unsat_core()] == [
                t.name for t in original.unsat_core()
            ]
            assert restored.formula_unsat == original.formula_unsat


@given(data=instance)
@settings(max_examples=30, deadline=None)
def test_fork_answers_like_the_original(data):
    base, guarded, queries = data
    original, guards = _build(base, guarded)
    clone = original.fork()
    for indices in queries:
        assumptions = [guards[i] for i in indices]
        assert clone.check(assumptions=assumptions) == original.check(
            assumptions=assumptions
        )


def test_fork_diverges_independently():
    x = intvar("fork_x")
    solver = Solver()
    solver.add(ge(x, 0))
    solver.add(le(x, 10))
    clone = solver.fork()
    clone.add(eq(x, 3))
    solver.add(eq(x, 7))
    assert solver.check() == Result.SAT and solver.model()[x] == 7
    assert clone.check() == Result.SAT and clone.model()[x] == 3


def test_restored_int_vars_compose_with_new_arithmetic():
    cap = intvar("cap[q]")
    g2 = boolvar("pin2")
    solver = Solver()
    solver.add(ge(cap, 0))
    solver.add(implies(g2, eq(cap, 2)))
    restored, ints = restore_solver(solver.snapshot())
    cap_r = ints[cap.uid]
    g5 = boolvar("pin5")  # minted on the restored side, like a worker does
    restored.add_global(implies(g5, eq(cap_r, 5)))
    assert restored.check(assumptions=[boolvar("pin2")]) == Result.SAT
    assert restored.model()[cap_r] == 2
    assert restored.check(assumptions=[g5]) == Result.SAT
    assert restored.model()[cap_r] == 5
    assert restored.check(assumptions=[boolvar("pin2"), g5]) == Result.UNSAT
    assert {t.name for t in restored.unsat_core()} == {"pin2", "pin5"}
    assert not restored.formula_unsat


def test_snapshot_refuses_open_scopes():
    solver = Solver()
    solver.add(ge(intvar("scoped"), 0))
    solver.push()
    try:
        solver.snapshot()
    except ValueError:
        pass
    else:
        raise AssertionError("snapshot() must reject open scopes")
    solver.pop()
    solver.snapshot()  # closed scopes are fine


def test_snapshot_preserves_popped_scope_retractions():
    x = intvar("scope_x")
    solver = Solver()
    solver.add(ge(x, 0))
    solver.add(le(x, 9))
    solver.push()
    solver.add(eq(x, 1))
    solver.pop()
    restored, ints = restore_solver(solver.snapshot())
    restored.add_global(eq(ints[x.uid], 5))  # contradicts the popped eq(x,1)
    assert restored.check() == Result.SAT  # pop survived the round-trip


# ---------------------------------------------------------------------------
# The early-UNSAT short-circuit contract (satellite fix)
# ---------------------------------------------------------------------------

CANONICAL_STAT_KEYS = {
    "conflicts",
    "decisions",
    "propagations",
    "restarts",
    # Learned-clause lifecycle counters (stable since PR 3).
    "learned",
    "reductions",
    "reduced",
    "kept_glue",
    "splits",
    # Cooperative-slicing counters (portfolio racing): covered by the same
    # zeroing contract — an early-UNSAT check() must report zeros for them.
    "conflict_limit_hits",
    "cancelled",
    "imported_rounds",
}


def test_early_unsat_zeroes_all_stat_keys_and_flags_formula():
    solver = Solver()
    solver.add(FALSE)
    guard = boolvar("unused_guard")
    assert solver.check(assumptions=[guard]) == Result.UNSAT
    assert set(solver.stats) == CANONICAL_STAT_KEYS
    assert all(value == 0 for value in solver.stats.values())
    assert solver.unsat_core() == []
    assert solver.formula_unsat  # empty core because the *formula* is false
    # Stat keys match a normally-solved query's exactly.
    probe = Solver()
    x = intvar("early_x")
    probe.add(ge(x, 0))
    assert probe.check() == Result.SAT
    assert set(probe.stats) == CANONICAL_STAT_KEYS


def test_assumption_unsat_is_distinguishable_from_formula_unsat():
    x = intvar("dist_x")
    solver = Solver()
    solver.add(ge(x, 0))
    lo, hi = boolvar("dist_lo"), boolvar("dist_hi")
    solver.add(implies(lo, le(x, 1)))
    solver.add(implies(hi, ge(x, 5)))
    assert solver.check(assumptions=[lo, hi]) == Result.UNSAT
    assert {t.name for t in solver.unsat_core()} == {"dist_lo", "dist_hi"}
    assert not solver.formula_unsat  # the assumptions did it
    # After a SAT check the flag must refuse to answer.
    assert solver.check(assumptions=[lo]) == Result.SAT
    try:
        solver.formula_unsat
    except RuntimeError:
        pass
    else:
        raise AssertionError("formula_unsat must require a prior UNSAT check")
