"""Unit tests for the exact incremental simplex."""

from fractions import Fraction

from repro.smt.simplex import Simplex


def test_plain_bounds_no_rows():
    simplex = Simplex()
    x = simplex.new_var()
    assert simplex.assert_lower(x, Fraction(2), reason=1) is None
    assert simplex.assert_upper(x, Fraction(5), reason=2) is None
    assert simplex.check() is None
    assert Fraction(2) <= simplex.value(x) <= Fraction(5)


def test_immediate_bound_conflict():
    simplex = Simplex()
    x = simplex.new_var()
    assert simplex.assert_lower(x, Fraction(3), reason=1) is None
    conflict = simplex.assert_upper(x, Fraction(2), reason=2)
    assert conflict is not None
    assert set(conflict) == {1, 2}


def test_row_feasibility():
    simplex = Simplex()
    x = simplex.new_var()
    y = simplex.new_var()
    s = simplex.define({x: Fraction(1), y: Fraction(1)})  # s = x + y
    assert simplex.assert_lower(x, Fraction(1), reason=1) is None
    assert simplex.assert_lower(y, Fraction(1), reason=2) is None
    assert simplex.assert_upper(s, Fraction(3), reason=3) is None
    assert simplex.check() is None
    assert simplex.value(x) + simplex.value(y) == simplex.value(s)
    assert simplex.value(s) <= 3


def test_row_conflict_explanation():
    simplex = Simplex()
    x = simplex.new_var()
    y = simplex.new_var()
    s = simplex.define({x: Fraction(1), y: Fraction(1)})
    assert simplex.assert_lower(x, Fraction(2), reason=10) is None
    assert simplex.assert_lower(y, Fraction(2), reason=11) is None
    conflict = simplex.assert_upper(s, Fraction(3), reason=12) or simplex.check()
    assert conflict is not None
    assert set(conflict) == {10, 11, 12}


def test_conflict_via_two_rows():
    simplex = Simplex()
    x = simplex.new_var()
    y = simplex.new_var()
    diff = simplex.define({x: Fraction(1), y: Fraction(-1)})  # x - y
    total = simplex.define({x: Fraction(1), y: Fraction(1)})  # x + y
    assert simplex.assert_lower(diff, Fraction(2), reason=1) is None
    assert simplex.assert_upper(total, Fraction(1), reason=2) is None
    assert simplex.assert_lower(y, Fraction(0), reason=3) is None
    conflict = simplex.check()
    assert conflict is not None
    assert 3 in conflict or 2 in conflict


def test_undo_restores_bounds():
    simplex = Simplex()
    x = simplex.new_var()
    mark = simplex.undo_length()
    assert simplex.assert_upper(x, Fraction(1), reason=1) is None
    assert simplex.bounds(x)[1] == 1
    simplex.undo_to(mark)
    assert simplex.bounds(x) == (None, None)


def test_undo_then_reassert_after_conflict():
    simplex = Simplex()
    x = simplex.new_var()
    y = simplex.new_var()
    s = simplex.define({x: Fraction(1), y: Fraction(1)})
    assert simplex.assert_lower(x, Fraction(2), reason=1) is None
    mark = simplex.undo_length()
    assert simplex.assert_lower(y, Fraction(2), reason=2) is None
    conflict = simplex.assert_upper(s, Fraction(3), reason=3) or simplex.check()
    assert conflict is not None
    simplex.undo_to(mark)
    # With y's bound retracted, s <= 3 is consistent again.
    assert simplex.assert_upper(s, Fraction(3), reason=4) is None
    assert simplex.check() is None
    assert simplex.value(s) <= 3
    assert simplex.value(x) >= 2


def test_define_substitutes_basic_vars():
    simplex = Simplex()
    x = simplex.new_var()
    y = simplex.new_var()
    s = simplex.define({x: Fraction(1), y: Fraction(1)})
    t = simplex.define({s: Fraction(2), x: Fraction(1)})  # t = 2s + x = 3x + 2y
    assert simplex.assert_lower(x, Fraction(1), reason=1) is None
    assert simplex.assert_lower(y, Fraction(1), reason=2) is None
    assert simplex.check() is None
    assert simplex.value(t) == 3 * simplex.value(x) + 2 * simplex.value(y)


def test_equalities_via_double_bounds():
    simplex = Simplex()
    x = simplex.new_var()
    y = simplex.new_var()
    s = simplex.define({x: Fraction(1), y: Fraction(1)})
    for var, value, base in ((x, 2, 10), (s, 7, 20)):
        assert simplex.assert_lower(var, Fraction(value), reason=base) is None
        assert simplex.assert_upper(var, Fraction(value), reason=base + 1) is None
    assert simplex.check() is None
    assert simplex.value(y) == 5


def test_fractional_solution_values():
    simplex = Simplex()
    x = simplex.new_var()
    s = simplex.define({x: Fraction(2)})
    assert simplex.assert_lower(s, Fraction(1), reason=1) is None
    assert simplex.assert_upper(s, Fraction(1), reason=2) is None
    assert simplex.check() is None
    assert simplex.value(x) == Fraction(1, 2)


def test_full_check_rescans_everything():
    simplex = Simplex()
    x = simplex.new_var()
    y = simplex.new_var()
    simplex.define({x: Fraction(1), y: Fraction(1)})
    assert simplex.check(full=True) is None


def test_many_pivots_terminate():
    # A chain of rows forcing repeated pivoting (Bland's rule must terminate).
    simplex = Simplex()
    xs = [simplex.new_var() for _ in range(6)]
    sums = [
        simplex.define({xs[i]: Fraction(1), xs[i + 1]: Fraction(1)})
        for i in range(5)
    ]
    for i, s in enumerate(sums):
        assert simplex.assert_lower(s, Fraction(1), reason=100 + i) is None
    for i, x in enumerate(xs):
        assert simplex.assert_upper(x, Fraction(1), reason=200 + i) is None
        assert simplex.assert_lower(x, Fraction(0), reason=300 + i) is None
    assert simplex.check() is None
    for i, s in enumerate(sums):
        assert simplex.value(s) >= 1
