"""Cooperative slice bounds: ``conflict_limit`` / ``should_stop``.

Portfolio racing runs every racer in bounded slices — the solver must
return UNKNOWN at a slice boundary with *all* learning retained, answer
the same query correctly when re-sliced, and stop within one propagate
cycle of a cancellation callback firing.  These are the unit-level
contracts under ``core/portfolio.py``; the session-level differentials
live in ``tests/core/test_portfolio.py``.
"""

import pytest

from repro.smt import Result, Solver, boolvar, ge, implies, intvar, le
from repro.smt._sat_reference import Cdcl as ReferenceCdcl
from repro.smt.sat import SAT, UNKNOWN, UNSAT, Cdcl


def _pigeonhole(solver_cls, pigeons=5, holes=4):
    """PHP(p, h): UNSAT and needs real conflict work — var p*holes+h+1."""
    cdcl = solver_cls()
    for _ in range(pigeons * holes):
        cdcl.new_var()
    for p in range(pigeons):
        cdcl.add_clause([p * holes + h + 1 for h in range(holes)])
    for h in range(holes):
        for p in range(pigeons):
            for q in range(p + 1, pigeons):
                cdcl.add_clause(
                    [-(p * holes + h + 1), -(q * holes + h + 1)]
                )
    return cdcl


@pytest.mark.parametrize("solver_cls", [Cdcl, ReferenceCdcl], ids=["arena", "reference"])
def test_zero_conflict_limit_returns_unknown_immediately(solver_cls):
    cdcl = _pigeonhole(solver_cls)
    assert cdcl.solve(conflict_limit=0) == UNKNOWN
    assert cdcl.stats["conflict_limit_hits"] == 1
    assert cdcl.stats["cancelled"] == 0
    # The solver stays usable: an unbounded solve answers for real.
    assert cdcl.solve() == UNSAT


@pytest.mark.parametrize("solver_cls", [Cdcl, ReferenceCdcl], ids=["arena", "reference"])
def test_resliced_solve_reaches_the_fresh_verdict(solver_cls):
    sliced = _pigeonhole(solver_cls)
    rounds = 0
    while True:
        verdict = sliced.solve(conflict_limit=3)
        rounds += 1
        if verdict != UNKNOWN:
            break
        assert rounds < 10_000, "slicing must terminate"
    assert verdict == _pigeonhole(solver_cls).solve() == UNSAT
    assert rounds > 1, "PHP(5,4) cannot finish inside one 3-conflict slice"
    assert sliced.stats["conflict_limit_hits"] == rounds - 1


def test_conflict_limit_is_per_call_not_cumulative():
    # Two 3-conflict slices must each get a fresh budget: the second call
    # may not be charged for the first call's conflicts.
    cdcl = _pigeonhole(Cdcl)
    assert cdcl.solve(conflict_limit=3) == UNKNOWN
    spent = cdcl.stats["conflicts"]
    assert cdcl.solve(conflict_limit=3) == UNKNOWN
    assert cdcl.stats["conflicts"] >= spent + 3


@pytest.mark.parametrize("solver_cls", [Cdcl, ReferenceCdcl], ids=["arena", "reference"])
def test_should_stop_cancels_and_keeps_the_solver_reusable(solver_cls):
    cdcl = _pigeonhole(solver_cls)
    assert cdcl.solve(should_stop=lambda: True) == UNKNOWN
    assert cdcl.stats["cancelled"] == 1
    assert cdcl.stats["conflict_limit_hits"] == 0
    assert cdcl.solve() == UNSAT


def test_should_stop_is_polled_every_propagate_cycle():
    # A stop firing on the Nth poll bounds the overshoot to that cycle:
    # the solve must return UNKNOWN, not run to completion.
    polls = 0

    def stop_after_five():
        nonlocal polls
        polls += 1
        return polls > 5

    cdcl = _pigeonhole(Cdcl)
    assert cdcl.solve(should_stop=stop_after_five) == UNKNOWN
    assert polls == 6


def test_sliced_solver_keeps_learning_across_slices():
    cdcl = _pigeonhole(Cdcl)
    assert cdcl.solve(conflict_limit=5) == UNKNOWN
    assert cdcl.stats["learned"] > 0
    assert cdcl.learned_clauses(), "slice boundary must not drop learnt state"


def test_slice_bounds_compose_with_assumptions():
    cdcl = Cdcl()
    a, b = cdcl.new_var(), cdcl.new_var()
    cdcl.add_clause([a, b])
    assert cdcl.solve(assumptions=(-a,), conflict_limit=0) == UNKNOWN
    assert cdcl.solve(assumptions=(-a,)) == SAT
    assert cdcl.solve(assumptions=(-a, -b)) == UNSAT


# ---------------------------------------------------------------------------
# Solver level: Result.UNKNOWN surfaces through check()
# ---------------------------------------------------------------------------


def _tight_solver():
    """A small LIA instance whose B&B search survives a zero-budget slice."""
    solver = Solver()
    xs = [intvar(f"sl{i}") for i in range(3)]
    for x in xs:
        solver.add(ge(x, 0))
        solver.add(le(x, 5))
    solver.add(le(xs[0] + xs[1] + xs[2], 7))
    solver.add(ge(xs[0] + 2 * xs[1], 4))
    return solver, xs


def test_check_conflict_limit_zero_is_unknown_then_answers():
    solver, _ = _tight_solver()
    assert solver.check(conflict_limit=0) == Result.UNKNOWN
    assert solver.stats["conflict_limit_hits"] == 1
    verdict = solver.check()
    assert verdict in (Result.SAT, Result.UNSAT)
    fresh, _ = _tight_solver()
    assert verdict == fresh.check()


def test_check_should_stop_is_unknown_with_cancelled_stat():
    solver, _ = _tight_solver()
    assert solver.check(should_stop=lambda: True) == Result.UNKNOWN
    assert solver.stats["cancelled"] == 1


def test_check_resliced_verdict_and_core_match_unbounded():
    solver, xs = _tight_solver()
    lo, hi = boolvar("slice_lo"), boolvar("slice_hi")
    solver.add(implies(lo, le(xs[0], 0)))
    solver.add(implies(hi, ge(2 * xs[1], 9)))
    budget = 1
    while True:
        verdict = solver.check(assumptions=[lo, hi], conflict_limit=budget)
        if verdict != Result.UNKNOWN:
            break
        budget += 1
        assert budget < 10_000
    reference, rxs = _tight_solver()
    reference.add(implies(boolvar("slice_lo"), le(rxs[0], 0)))
    reference.add(implies(boolvar("slice_hi"), ge(2 * rxs[1], 9)))
    expected = reference.check(
        assumptions=[boolvar("slice_lo"), boolvar("slice_hi")]
    )
    assert verdict == expected
    if expected == Result.UNSAT:
        assert {t.name for t in solver.unsat_core()} == {
            t.name for t in reference.unsat_core()
        }
