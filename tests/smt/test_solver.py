"""End-to-end tests of the SMT solver facade."""

import pytest

from repro.smt import (
    FALSE,
    TRUE,
    Result,
    Solver,
    boolvar,
    conj,
    disj,
    eq,
    exactly_one,
    ge,
    iff,
    implies,
    intvar,
    le,
    lt,
    ne,
    neg,
)


def check(*terms):
    solver = Solver()
    for term in terms:
        solver.add(term)
    return solver.check(), solver


def test_trivially_true():
    result, _ = check(TRUE)
    assert result == Result.SAT


def test_trivially_false():
    result, _ = check(FALSE)
    assert result == Result.UNSAT


def test_pure_boolean_sat():
    x, y = boolvar("px"), boolvar("py")
    result, solver = check(disj(x, y), neg(x))
    assert result == Result.SAT
    assert solver.model()[y] is True
    assert solver.model()[x] is False


def test_pure_boolean_unsat():
    x = boolvar("qx")
    result, _ = check(x, neg(x))
    assert result == Result.UNSAT


def test_iff_chain():
    a, b, c = (boolvar(f"r{i}") for i in "abc")
    result, solver = check(iff(a, b), iff(b, c), a)
    assert result == Result.SAT
    assert solver.model()[c] is True


def test_simple_integer_bounds():
    x = intvar("x")
    result, solver = check(ge(x, 2), le(x, 2))
    assert result == Result.SAT
    assert solver.model()[x] == 2


def test_integer_bounds_unsat():
    x = intvar("x")
    result, _ = check(ge(x, 3), le(x, 2))
    assert result == Result.UNSAT


def test_sum_constraint():
    x, y = intvar("x"), intvar("y")
    result, solver = check(
        ge(x, 0), ge(y, 0), le(x, 10), le(y, 10), eq(x + y, 7), ge(x - y, 3)
    )
    assert result == Result.SAT
    model = solver.model()
    assert model[x] + model[y] == 7
    assert model[x] - model[y] >= 3


def test_integrality_forces_unsat():
    # 2x = 3 has a rational solution but no integer one.
    x = intvar("x")
    result, _ = check(ge(x, 0), le(x, 5), eq(2 * x, 3))
    assert result == Result.UNSAT


def test_branch_and_bound_finds_integer_point():
    # x + y = 1, 2x - 2y = 1 has only the fractional solution (3/4, 1/4);
    # relaxing to inequalities leaves integer points the solver must find.
    x, y = intvar("x"), intvar("y")
    result, solver = check(
        ge(x, 0), le(x, 4), ge(y, 0), le(y, 4), eq(x + y, 3), ge(2 * x - 2 * y, 1)
    )
    assert result == Result.SAT
    model = solver.model()
    assert model[x] + model[y] == 3
    assert 2 * model[x] - 2 * model[y] >= 1


def test_boolean_guards_arithmetic():
    x = intvar("x")
    guard = boolvar("guard")
    result, solver = check(
        ge(x, 0),
        le(x, 10),
        implies(guard, ge(x, 7)),
        implies(neg(guard), le(x, 2)),
        ge(x, 5),
    )
    assert result == Result.SAT
    model = solver.model()
    assert model[guard] is True
    assert model[x] >= 7


def test_disjunction_of_constraints():
    x = intvar("x")
    result, solver = check(
        ge(x, 0), le(x, 10), disj(eq(x, 3), eq(x, 8)), ne(x, 3)
    )
    assert result == Result.SAT
    assert solver.model()[x] == 8


def test_exactly_one_indicator():
    indicators = [boolvar(f"state{i}") for i in range(4)]
    result, solver = check(exactly_one(*indicators), neg(indicators[0]),
                           neg(indicators[2]), neg(indicators[3]))
    assert result == Result.SAT
    assert solver.model()[indicators[1]] is True


def test_zero_one_variables_as_ints():
    # The ADVOCAT pattern: A.s in {0,1}, sum over states = 1.
    states = [intvar(f"A.s{i}") for i in range(3)]
    bounds = [conj(ge(s, 0), le(s, 1)) for s in states]
    result, solver = check(*bounds, eq(sum(states[1:], states[0]), 1), eq(states[0], 0), eq(states[2], 0))
    assert result == Result.SAT
    assert solver.model()[states[1]] == 1


def test_unsat_from_invariant():
    # Invariant: x + y = 1; deadlock candidate needs x = 1 and y = 1.
    x, y = intvar("x"), intvar("y")
    result, _ = check(
        ge(x, 0), le(x, 1), ge(y, 0), le(y, 1), eq(x + y, 1), eq(x, 1), eq(y, 1)
    )
    assert result == Result.UNSAT


def test_strict_inequalities():
    x, y = intvar("x"), intvar("y")
    result, solver = check(ge(x, 0), le(x, 9), ge(y, 0), le(y, 9), lt(x, y), lt(y, x + 2))
    assert result == Result.SAT
    model = solver.model()
    assert model[x] < model[y] < model[x] + 2


def test_incremental_add_after_check():
    x = intvar("x")
    solver = Solver()
    solver.add(ge(x, 0))
    solver.add(le(x, 5))
    assert solver.check() == Result.SAT
    solver.add(ge(x, 6))
    assert solver.check() == Result.UNSAT


def test_model_before_check_raises():
    solver = Solver()
    with pytest.raises(RuntimeError):
        solver.model()


def test_unbounded_problem_budget():
    # x unbounded with a purely fractional equality: branch and bound would
    # walk forever; the split budget must kick in.
    x, y = intvar("x"), intvar("y")
    solver = Solver(max_splits=5)
    solver.add(eq(2 * x - 4 * y, 1))
    # No integer solution exists (lhs is even-ish: 2(x-2y) = 1 impossible);
    # gcd tightening at construction already collapses this to FALSE.
    assert solver.check() == Result.UNSAT


def test_large_coefficient_exactness():
    x = intvar("x")
    big = 10**12
    result, solver = check(ge(x, big), le(x, big))
    assert result == Result.SAT
    assert solver.model()[x] == big


def test_stats_exposed():
    x = intvar("x")
    _, solver = check(ge(x, 0), le(x, 1))
    assert "conflicts" in solver.stats
    assert "splits" in solver.stats
