"""Differential testing of the full SMT solver against enumeration."""

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.smt import Result, Solver, disj, eq, ge, intvar, le, neg

N_VARS = 3
DOMAIN = range(0, 4)  # enumeration domain for each integer variable


def fresh_vars():
    return [intvar(f"v{i}") for i in range(N_VARS)]


def make_atom(variables, spec):
    """Build one linear atom from a generated spec tuple."""
    coeffs, bound, kind = spec
    expr = sum(
        (c * v for c, v in zip(coeffs, variables)),
        0 * variables[0],
    )
    if kind == "le":
        return le(expr, bound), lambda vals: _dot(coeffs, vals) <= bound
    if kind == "ge":
        return ge(expr, bound), lambda vals: _dot(coeffs, vals) >= bound
    return eq(expr, bound), lambda vals: _dot(coeffs, vals) == bound


def _dot(coeffs, vals):
    return sum(c * v for c, v in zip(coeffs, vals))


atom_specs = st.tuples(
    st.tuples(*[st.integers(min_value=-2, max_value=2) for _ in range(N_VARS)]),
    st.integers(min_value=-4, max_value=8),
    st.sampled_from(["le", "ge", "eq"]),
)


@given(st.lists(atom_specs, min_size=1, max_size=5))
@settings(max_examples=150, deadline=None)
def test_conjunction_matches_enumeration(specs):
    variables = fresh_vars()
    solver = Solver()
    evaluators = []
    for var in variables:
        solver.add(ge(var, min(DOMAIN)))
        solver.add(le(var, max(DOMAIN)))
    for spec in specs:
        atom, evaluator = make_atom(variables, spec)
        solver.add(atom)
        evaluators.append(evaluator)

    expected = any(
        all(ev(point) for ev in evaluators)
        for point in product(DOMAIN, repeat=N_VARS)
    )
    verdict = solver.check()
    assert verdict == (Result.SAT if expected else Result.UNSAT)
    if verdict == Result.SAT:
        model = solver.model()
        values = [model[v] for v in variables]
        assert all(ev(values) for ev in evaluators)
        assert all(min(DOMAIN) <= value <= max(DOMAIN) for value in values)


@given(st.lists(atom_specs, min_size=2, max_size=6))
@settings(max_examples=100, deadline=None)
def test_disjunction_matches_enumeration(specs):
    variables = fresh_vars()
    solver = Solver()
    evaluators = []
    for var in variables:
        solver.add(ge(var, min(DOMAIN)))
        solver.add(le(var, max(DOMAIN)))
    terms = []
    for spec in specs:
        atom, evaluator = make_atom(variables, spec)
        terms.append(atom)
        evaluators.append(evaluator)
    half = len(terms) // 2
    solver.add(disj(*terms[:half]) if half else terms[0])
    solver.add(disj(*terms[half:]))

    def point_ok(point):
        first = any(ev(point) for ev in evaluators[:half]) if half else evaluators[0](point)
        second = any(ev(point) for ev in evaluators[half:])
        return first and second

    expected = any(point_ok(p) for p in product(DOMAIN, repeat=N_VARS))
    verdict = solver.check()
    assert verdict == (Result.SAT if expected else Result.UNSAT)


@given(st.lists(atom_specs, min_size=1, max_size=4))
@settings(max_examples=75, deadline=None)
def test_negation_matches_enumeration(specs):
    variables = fresh_vars()
    solver = Solver()
    evaluators = []
    for var in variables:
        solver.add(ge(var, min(DOMAIN)))
        solver.add(le(var, max(DOMAIN)))
    for index, spec in enumerate(specs):
        atom, evaluator = make_atom(variables, spec)
        if index % 2 == 0:
            solver.add(neg(atom))
            evaluators.append(lambda vals, ev=evaluator: not ev(vals))
        else:
            solver.add(atom)
            evaluators.append(evaluator)

    expected = any(
        all(ev(p) for ev in evaluators) for p in product(DOMAIN, repeat=N_VARS)
    )
    verdict = solver.check()
    assert verdict == (Result.SAT if expected else Result.UNSAT)
