"""Unit tests for the term language and its normalisations."""

from fractions import Fraction

import pytest

from repro.smt import (
    FALSE,
    TRUE,
    And,
    Atom,
    Not,
    Or,
    as_linexpr,
    boolvar,
    conj,
    disj,
    eq,
    exactly_one,
    ge,
    gt,
    iff,
    implies,
    intvar,
    ite,
    le,
    lt,
    ne,
    neg,
)


def test_boolvar_interned_by_name():
    assert boolvar("x") is boolvar("x")
    assert boolvar("x") is not boolvar("y")


def test_fresh_boolvars_distinct():
    assert boolvar() is not boolvar()


def test_intvars_are_nominal():
    assert intvar("n") is not intvar("n")


def test_neg_involution_and_constants():
    x = boolvar("x")
    assert neg(neg(x)) is x
    assert neg(TRUE) is FALSE
    assert neg(FALSE) is TRUE


def test_conj_folding():
    x, y = boolvar("x"), boolvar("y")
    assert conj() is TRUE
    assert conj(x) is x
    assert conj(x, TRUE) is x
    assert conj(x, FALSE) is FALSE
    assert conj(x, neg(x)) is FALSE
    assert conj(x, x, y) is conj(x, y)


def test_disj_folding():
    x, y = boolvar("x"), boolvar("y")
    assert disj() is FALSE
    assert disj(x) is x
    assert disj(x, FALSE) is x
    assert disj(x, TRUE) is TRUE
    assert disj(x, neg(x)) is TRUE
    assert disj(x, x, y) is disj(x, y)


def test_conj_flattens_nested():
    x, y, z = boolvar("x"), boolvar("y"), boolvar("z")
    nested = conj(conj(x, y), z)
    assert isinstance(nested, And)
    assert set(nested.args) == {x, y, z}


def test_disj_flattens_nested():
    x, y, z = boolvar("x"), boolvar("y"), boolvar("z")
    nested = disj(disj(x, y), z)
    assert isinstance(nested, Or)
    assert set(nested.args) == {x, y, z}


def test_hash_consing_of_compounds():
    x, y = boolvar("x"), boolvar("y")
    assert conj(x, y) is conj(x, y)
    assert disj(x, y) is disj(x, y)


def test_implies_iff_ite_shapes():
    x, y = boolvar("x"), boolvar("y")
    assert implies(TRUE, y) is y
    assert implies(FALSE, y) is TRUE
    assert iff(x, x) is TRUE
    assert ite(TRUE, x, y) is x


def test_operator_sugar():
    x, y = boolvar("x"), boolvar("y")
    assert (x & y) is conj(x, y)
    assert (x | y) is disj(x, y)
    assert (~x) is neg(x)
    assert (x >> y) is implies(x, y)


def test_exactly_one_small():
    x, y = boolvar("x"), boolvar("y")
    term = exactly_one(x, y)
    # (x|y) & (!x|!y)
    assert isinstance(term, And)


def test_le_constant_folding():
    assert le(1, 2) is TRUE
    assert le(2, 1) is FALSE
    assert le(2, 2) is TRUE
    assert lt(2, 2) is FALSE
    assert ge(3, 2) is TRUE
    assert gt(2, 3) is FALSE


def test_atom_normalisation_shares_representation():
    x = intvar("x")
    # x <= 3 written three different ways must intern identically.
    a = le(x, 3)
    b = le(x - 3, 0)
    c = le(2 * x, 6)
    assert a is b is c


def test_strict_inequality_integer_tightening():
    x = intvar("x")
    assert lt(x, 4) is le(x, 3)
    assert gt(x, 4) is ge(x, 5)


def test_fractional_coefficients_scaled_away():
    x = intvar("x")
    atom = le(Fraction(1, 2) * x, Fraction(3, 2))
    assert atom is le(x, 3)


def test_gcd_tightening_rounds_bound():
    x = intvar("x")
    # 2x <= 5 tightens to x <= 2 over the integers.
    assert le(2 * x, 5) is le(x, 2)


def test_eq_expands_to_two_inequalities():
    x = intvar("x")
    term = eq(x, 3)
    assert isinstance(term, And)
    assert le(x, 3) in term.args
    assert ge(x, 3) in term.args


def test_eq_with_unsatisfiable_gcd():
    x = intvar("x")
    # 2x = 3 has no integer solution: both tightened bounds conflict
    # (2x<=3 -> x<=1 and 2x>=3 -> x>=2), and the conjunction stays symbolic.
    term = eq(2 * x, 3)
    assert isinstance(term, And)


def test_ne_is_negation_of_eq():
    x = intvar("x")
    assert ne(x, 3) is neg(eq(x, 3))


def test_linexpr_arithmetic():
    x, y = intvar("x"), intvar("y")
    expr = 2 * x + y - x + 1
    assert expr.coeffs[x] == 1
    assert expr.coeffs[y] == 1
    assert expr.const == 1


def test_linexpr_cancellation():
    x = intvar("x")
    expr = x - x
    assert as_linexpr(expr).coeffs == {}


def test_as_linexpr_rejects_junk():
    with pytest.raises(TypeError):
        as_linexpr("not an expression")


def test_atom_evaluate():
    x, y = intvar("x"), intvar("y")
    atom = le(x + 2 * y, 4)
    assert isinstance(atom, Atom)
    assert atom.constraint.evaluate({x: 0, y: 2})
    assert not atom.constraint.evaluate({x: 1, y: 2})


def test_negated_atom_is_not_node():
    x = intvar("x")
    term = neg(le(x, 3))
    assert isinstance(term, Not)
    assert isinstance(term.arg, Atom)
