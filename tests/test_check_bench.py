"""Unit tests for the CI benchmark-regression gate (benchmarks/check_bench.py)."""

import importlib.util
from pathlib import Path

_SPEC = importlib.util.spec_from_file_location(
    "check_bench",
    Path(__file__).resolve().parent.parent / "benchmarks" / "check_bench.py",
)
check_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(check_bench)


BASE = {
    "smoke": True,
    "grid": {"verdict_sha": "abc123", "verdicts_byte_identical": True,
             "speedup": 2.0},
    "resume": {"resumed_s": 0.1},
}


def _compare(fresh, baseline=BASE, tolerance=0.3, check_speed=True):
    return check_bench.compare_records(
        "BENCH_x.json", fresh, baseline, tolerance, check_speed
    )


def test_identical_records_pass():
    assert _compare(BASE) == []


def test_verdict_sha_divergence_fails():
    fresh = {**BASE, "grid": {**BASE["grid"], "verdict_sha": "deadbeef"}}
    failures = _compare(fresh)
    assert any("VERDICT DIVERGENCE" in f for f in failures)


def test_missing_sha_path_fails():
    fresh = {**BASE, "grid": {"speedup": 2.0, "verdicts_byte_identical": True}}
    failures = _compare(fresh)
    assert any("missing from the fresh record" in f for f in failures)


def test_false_verdict_flag_fails():
    fresh = {
        **BASE,
        "grid": {**BASE["grid"], "verdicts_byte_identical": False},
    }
    failures = _compare(fresh)
    assert any("is False" in f for f in failures)


def test_slowdown_beyond_tolerance_fails_only_with_speed_gate():
    fresh = {**BASE, "grid": {**BASE["grid"], "speedup": 1.0}}  # 50% down
    assert any("SLOWDOWN" in f for f in _compare(fresh, check_speed=True))
    assert _compare(fresh, check_speed=False) == []
    # Within tolerance: 2.0 -> 1.5 is a 25% drop, under the 30% default.
    ok = {**BASE, "grid": {**BASE["grid"], "speedup": 1.5}}
    assert _compare(ok, check_speed=True) == []


def test_speedup_improvement_passes():
    fresh = {**BASE, "grid": {**BASE["grid"], "speedup": 9.0}}
    assert _compare(fresh, check_speed=True) == []


def test_smoke_flag_mismatch_is_config_drift():
    fresh = {**BASE, "smoke": False}
    failures = _compare(fresh)
    assert len(failures) == 1
    assert "config drift" in failures[0]


def test_config_drift_does_not_hide_other_failures():
    fresh = {
        "smoke": False,
        "grid": {
            "verdict_sha": "deadbeef",
            "verdicts_byte_identical": False,
            "speedup": 0.5,
        },
        "resume": {"resumed_s": 0.1},
    }
    failures = _compare(fresh)
    assert any("config drift" in f for f in failures)
    assert any("VERDICT DIVERGENCE" in f for f in failures)
    assert any("is False" in f for f in failures)
    assert any("SLOWDOWN" in f for f in failures)


def test_main_reports_all_failing_records(tmp_path, monkeypatch, capsys):
    """Every failing record shows up in one run — no first-failure exit."""
    import json

    baseline_dir = tmp_path / "baselines"
    fresh_dir = tmp_path / "fresh"
    baseline_dir.mkdir()
    fresh_dir.mkdir()
    for name in ("BENCH_a.json", "BENCH_b.json"):
        (baseline_dir / name).write_text(json.dumps(BASE))
        broken = {**BASE, "grid": {**BASE["grid"], "verdict_sha": "oops"}}
        (fresh_dir / name).write_text(json.dumps(broken))
    (baseline_dir / "BENCH_ok.json").write_text(json.dumps(BASE))
    (fresh_dir / "BENCH_ok.json").write_text(json.dumps(BASE))

    monkeypatch.setattr(
        "sys.argv",
        [
            "check_bench.py",
            "--baseline-dir", str(baseline_dir),
            "--fresh-dir", str(fresh_dir),
            "BENCH_a.json", "BENCH_b.json", "BENCH_ok.json",
        ],
    )
    assert check_bench.main() == 1
    output = capsys.readouterr()
    assert "BENCH_a.json: VERDICT DIVERGENCE" in output.err
    assert "BENCH_b.json: VERDICT DIVERGENCE" in output.err
    assert "BENCH_ok.json: ok" in output.out
