"""Tests for xMAS automata (Definitions 1 and 2)."""

import pytest

from repro.xmas import Automaton, Transition


def simple_automaton():
    return Automaton(
        "A",
        states=["idle", "busy"],
        initial="idle",
        in_ports=["cmd", "done"],
        out_ports=["work"],
        transitions=[
            Transition(
                name="start",
                origin="idle",
                target="busy",
                in_port="cmd",
                guard=lambda d: d == "go",
                out_port="work",
                produce=lambda d: ("job", d),
            ),
            Transition(
                name="finish",
                origin="busy",
                target="idle",
                in_port="done",
            ),
        ],
    )


def test_valid_construction():
    a = simple_automaton()
    assert a.initial == "idle"
    assert {p.name for p in a.in_ports()} == {"cmd", "done"}
    assert {p.name for p in a.out_ports()} == {"work"}


def test_transition_guard_and_output():
    a = simple_automaton()
    start = a.transitions[0]
    assert start.accepts("go")
    assert not start.accepts("stop")
    assert start.output("go") == ("work", ("job", "go"))


def test_transition_without_output():
    a = simple_automaton()
    finish = a.transitions[1]
    assert finish.accepts("anything")
    assert finish.output("anything") is None


def test_queries():
    a = simple_automaton()
    assert [t.name for t in a.transitions_from("idle")] == ["start"]
    assert [t.name for t in a.transitions_into("idle")] == ["finish"]
    assert [t.name for t in a.transitions_on_port("cmd")] == ["start"]


def test_state_var_name():
    a = simple_automaton()
    assert a.state_var_name("idle") == "A.idle"


def test_rejects_unknown_initial():
    with pytest.raises(ValueError):
        Automaton("A", states=["s"], initial="missing", in_ports=["i"],
                  out_ports=[], transitions=[])


def test_rejects_duplicate_states():
    with pytest.raises(ValueError):
        Automaton("A", states=["s", "s"], initial="s", in_ports=["i"],
                  out_ports=[], transitions=[])


def test_rejects_unknown_transition_state():
    with pytest.raises(ValueError):
        Automaton(
            "A", states=["s"], initial="s", in_ports=["i"], out_ports=[],
            transitions=[Transition("t", "s", "nowhere", "i")],
        )


def test_rejects_unknown_in_port():
    with pytest.raises(ValueError):
        Automaton(
            "A", states=["s"], initial="s", in_ports=["i"], out_ports=[],
            transitions=[Transition("t", "s", "s", "bogus")],
        )


def test_rejects_out_port_as_trigger():
    with pytest.raises(ValueError):
        Automaton(
            "A", states=["s"], initial="s", in_ports=["i"], out_ports=["o"],
            transitions=[Transition("t", "s", "s", "o")],
        )


def test_rejects_unknown_out_port():
    with pytest.raises(ValueError):
        Automaton(
            "A", states=["s"], initial="s", in_ports=["i"], out_ports=["o"],
            transitions=[
                Transition("t", "s", "s", "i", out_port="bogus", produce=lambda d: d)
            ],
        )


def test_rejects_duplicate_transition_names():
    with pytest.raises(ValueError):
        Automaton(
            "A", states=["s"], initial="s", in_ports=["i"], out_ports=[],
            transitions=[Transition("t", "s", "s", "i"), Transition("t", "s", "s", "i")],
        )


def test_transition_requires_produce_with_out_port():
    with pytest.raises(ValueError):
        Transition("t", "s", "s", "i", out_port="o")
    with pytest.raises(ValueError):
        Transition("t", "s", "s", "i", produce=lambda d: d)
