"""Tests for the network container, builder and validation."""

import pytest

from repro.netlib import producer_consumer, running_example, token_ring
from repro.xmas import Network, NetworkBuilder, Queue, to_dot


def test_producer_consumer_valid():
    net = producer_consumer()
    net.validate()
    assert net.stats()["queues"] == 1
    assert net.stats()["primitives"] == 3


def test_running_example_structure():
    example = running_example()
    stats = example.network.stats()
    assert stats["automata"] == 2
    assert stats["queues"] == 2
    assert stats["sources"] == 2
    assert stats["channels"] == 6


def test_token_ring_cycle():
    net = token_ring(4)
    assert net.stats()["queues"] == 4


def test_duplicate_primitive_rejected():
    net = Network()
    net.add(Queue("q", 1))
    with pytest.raises(ValueError):
        net.add(Queue("q", 2))


def test_connect_requires_registered_primitives():
    net = Network()
    foreign = Queue("q", 1)
    registered = net.add(Queue("p", 1))
    with pytest.raises(ValueError):
        net.connect(foreign.o, registered.i)


def test_connect_direction_enforced():
    builder = NetworkBuilder()
    a = builder.queue("a", 1)
    b = builder.queue("b", 1)
    with pytest.raises(ValueError):
        builder.connect(a.i, b.o)  # wrong directions


def test_double_connection_rejected():
    builder = NetworkBuilder()
    a = builder.queue("a", 1)
    b = builder.queue("b", 1)
    c = builder.queue("c", 1)
    builder.connect(a.o, b.i)
    with pytest.raises(ValueError):
        builder.connect(a.o, c.i)


def test_validate_flags_unconnected_ports():
    builder = NetworkBuilder()
    builder.queue("a", 1)
    with pytest.raises(ValueError, match="unconnected"):
        builder.build()


def test_validate_flags_unreachable_states():
    from repro.xmas import Transition

    builder = NetworkBuilder()
    src = builder.source("src", colors={"x"})
    auto = builder.automaton(
        "A",
        states=["s0", "dead_state"],
        initial="s0",
        in_ports=["i"],
        out_ports=[],
        transitions=[Transition("loop", "s0", "s0", "i")],
    )
    builder.connect(src.o, auto.port("i"))
    with pytest.raises(ValueError, match="unreachable"):
        builder.build()


def test_getitem_and_contains():
    net = producer_consumer()
    assert "q" in net
    assert net["q"].size == 2


def test_channel_of_unconnected_port_raises():
    net = Network()
    q = net.add(Queue("q", 1))
    with pytest.raises(ValueError):
        net.channel_of(q.i)


def test_pipeline_helper():
    builder = NetworkBuilder()
    a = builder.queue("a", 1)
    b = builder.queue("b", 1)
    src = builder.source("s", colors={"x"})
    snk = builder.sink("k")
    channels = builder.pipeline(src.o, a.i, a.o, b.i, b.o, snk.i)
    assert len(channels) == 3
    builder.build()


def test_pipeline_odd_ports_rejected():
    builder = NetworkBuilder()
    src = builder.source("s", colors={"x"})
    with pytest.raises(ValueError):
        builder.pipeline(src.o)


def test_dot_export_mentions_all_primitives():
    example = running_example()
    dot = to_dot(example.network)
    for name in example.network.primitives:
        assert name in dot
    assert dot.startswith("digraph")
