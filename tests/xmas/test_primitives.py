"""Structural tests for the xMAS primitives."""

import pytest

from repro.xmas import (
    Direction,
    Fork,
    Function,
    Join,
    Merge,
    Queue,
    Sink,
    Source,
    Switch,
)


def test_queue_ports():
    q = Queue("q", size=3)
    assert q.i.direction is Direction.IN
    assert q.o.direction is Direction.OUT
    assert q.size == 3
    assert not q.rotating


def test_queue_rejects_zero_size():
    with pytest.raises(ValueError):
        Queue("q", size=0)


def test_rotating_queue_flag():
    q = Queue("q", size=1, rotating=True)
    assert q.rotating


def test_function_applies():
    f = Function("f", fn=lambda d: d.upper())
    assert f.fn("abc") == "ABC"
    assert len(f.in_ports()) == 1
    assert len(f.out_ports()) == 1


def test_source_colors_frozen():
    s = Source("s", colors=["a", "b", "a"])
    assert s.colors == frozenset({"a", "b"})


def test_source_requires_colors():
    with pytest.raises(ValueError):
        Source("s", colors=[])


def test_sink_fairness_default():
    assert Sink("k").fair
    assert not Sink("k2", fair=False).fair


def test_fork_default_copies():
    f = Fork("f")
    assert f.fn_a("x") == "x"
    assert f.fn_b("x") == "x"
    assert {p.name for p in f.out_ports()} == {"a", "b"}


def test_fork_with_transforms():
    f = Fork("f", fn_a=lambda d: ("left", d), fn_b=lambda d: ("right", d))
    assert f.fn_a("x") == ("left", "x")
    assert f.fn_b("x") == ("right", "x")


def test_join_default_takes_first():
    j = Join("j")
    assert j.combine("data", "token") == "data"
    assert {p.name for p in j.in_ports()} == {"a", "b"}


def test_switch_ports_and_routing():
    sw = Switch("sw", route=lambda d: d % 3, n_outputs=3)
    assert len(sw.outs) == 3
    assert sw.route(5) == 2
    assert [p.name for p in sw.outs] == ["o0", "o1", "o2"]


def test_switch_minimum_outputs():
    with pytest.raises(ValueError):
        Switch("sw", route=lambda d: 0, n_outputs=1)


def test_merge_ports():
    m = Merge("m", n_inputs=4)
    assert len(m.ins) == 4
    assert m.o.direction is Direction.OUT


def test_merge_minimum_inputs():
    with pytest.raises(ValueError):
        Merge("m", n_inputs=1)


def test_qualified_port_names():
    q = Queue("router0_in", size=1)
    assert q.i.qualified_name == "router0_in.i"


def test_repr():
    assert repr(Queue("q", 1)) == "Queue(q)"
